// Package rng provides deterministic, seedable random-number utilities
// shared by every stochastic component in the repository: the task-graph
// generator, the genetic algorithm, and the run-time Monte-Carlo
// simulations.
//
// Each component receives its own *Source derived from a root seed via
// Split, so that changing the amount of randomness consumed by one
// component never perturbs another. All distributions needed by the
// paper's evaluation are implemented here: Normal, truncated Normal,
// bivariate Normal (QoS-specification variation), Exponential
// (inter-arrival of discrete QoS events, mean 100 application cycles)
// and Weibull (lifetime / MTTF sampling with scale parameter eta).
package rng

import (
	"math"
	"math/rand"
)

// Source is a deterministic random source with distribution helpers.
// It wraps math/rand.Rand so the zero-allocation core generator is the
// standard library's, while the derived distributions live here.
type Source struct {
	r *rand.Rand
}

// New returns a Source seeded with seed. Equal seeds yield identical
// streams on every platform.
func New(seed int64) *Source {
	return &Source{r: rand.New(rand.NewSource(mix(seed)))}
}

// mix applies a splitmix64-style finalizer so that small consecutive
// seeds (0, 1, 2, ...) produce uncorrelated streams.
func mix(seed int64) int64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	// Keep the sign bit clear; rand.NewSource ignores it anyway but a
	// non-negative value prints more readably in debug output.
	return int64(z &^ (1 << 63))
}

// Split derives an independent child source. The child's stream is a
// pure function of the parent seed and the stream label, not of how
// much randomness the parent has already consumed.
func (s *Source) Split(label int64) *Source {
	// Draw a fresh 63-bit seed and fold in the label so that repeated
	// Split calls with distinct labels diverge even if the parent is
	// freshly created.
	return New(int64(s.r.Uint64()>>1) ^ mix(label))
}

// Float64 returns a uniform variate in [0,1).
func (s *Source) Float64() float64 { return s.r.Float64() }

// Int63 returns a uniform non-negative 63-bit integer — the seed shape
// consumers hand to further deterministic components (e.g. deriving GA
// seeds from a fingerprinted observation stream).
func (s *Source) Int63() int64 { return s.r.Int63() }

// Intn returns a uniform int in [0,n). It panics if n <= 0, matching
// math/rand semantics.
func (s *Source) Intn(n int) int { return s.r.Intn(n) }

// Perm returns a random permutation of [0,n).
func (s *Source) Perm(n int) []int { return s.r.Perm(n) }

// Bool returns true with probability p.
func (s *Source) Bool(p float64) bool { return s.r.Float64() < p }

// Range returns a uniform variate in [lo,hi). It panics if hi < lo.
func (s *Source) Range(lo, hi float64) float64 {
	if hi < lo {
		panic("rng: Range with hi < lo")
	}
	return lo + (hi-lo)*s.r.Float64()
}

// IntRange returns a uniform int in [lo,hi] inclusive.
func (s *Source) IntRange(lo, hi int) int {
	if hi < lo {
		panic("rng: IntRange with hi < lo")
	}
	return lo + s.r.Intn(hi-lo+1)
}

// Normal returns a Gaussian variate with the given mean and standard
// deviation.
func (s *Source) Normal(mean, stddev float64) float64 {
	return mean + stddev*s.r.NormFloat64()
}

// TruncNormal returns a Gaussian variate clamped by rejection to
// [lo,hi]. If the interval is narrow relative to stddev the sampler
// falls back to clamping after a bounded number of rejections so it
// can never spin forever.
func (s *Source) TruncNormal(mean, stddev, lo, hi float64) float64 {
	if hi < lo {
		panic("rng: TruncNormal with hi < lo")
	}
	for i := 0; i < 64; i++ {
		v := s.Normal(mean, stddev)
		if v >= lo && v <= hi {
			return v
		}
	}
	return math.Min(hi, math.Max(lo, mean))
}

// Exponential returns an exponential variate with the given mean
// (i.e. rate 1/mean). The paper uses this for the time between
// discrete run-time events, with a mean of 100 application cycles.
func (s *Source) Exponential(mean float64) float64 {
	if mean <= 0 {
		panic("rng: Exponential with non-positive mean")
	}
	return s.r.ExpFloat64() * mean
}

// Weibull returns a Weibull variate with scale eta and shape beta.
// It is used for lifetime sampling: the CLR model's scale parameter
// eta(t,i) is a stress indicator, and beta is the PE's aging profile.
func (s *Source) Weibull(eta, beta float64) float64 {
	if eta <= 0 || beta <= 0 {
		panic("rng: Weibull with non-positive parameter")
	}
	u := s.r.Float64()
	// Guard against log(0).
	for u == 0 {
		u = s.r.Float64()
	}
	return eta * math.Pow(-math.Log(u), 1/beta)
}

// BivariateNormal returns a pair (x,y) from a bivariate Gaussian with
// means (mx,my), standard deviations (sx,sy) and correlation rho in
// (-1,1). The paper emulates changes in the two-dimensional QoS
// specification (makespan bound, reliability bound) with this
// distribution.
func (s *Source) BivariateNormal(mx, my, sx, sy, rho float64) (float64, float64) {
	if rho <= -1 || rho >= 1 {
		panic("rng: BivariateNormal with |rho| >= 1")
	}
	z1 := s.r.NormFloat64()
	z2 := s.r.NormFloat64()
	x := mx + sx*z1
	y := my + sy*(rho*z1+math.Sqrt(1-rho*rho)*z2)
	return x, y
}

// Choice returns a random index in [0,len(weights)) with probability
// proportional to weights[i]. All weights must be non-negative and at
// least one must be positive.
func (s *Source) Choice(weights []float64) int {
	total := 0.0
	for _, w := range weights {
		if w < 0 {
			panic("rng: Choice with negative weight")
		}
		total += w
	}
	if total <= 0 {
		panic("rng: Choice with zero total weight")
	}
	x := s.r.Float64() * total
	for i, w := range weights {
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}

// Shuffle permutes xs in place.
func Shuffle[T any](s *Source, xs []T) {
	s.r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
}
