// Package metrics is a minimal, dependency-free instrumentation
// substrate for the fleet decision service: atomic counters, gauges
// and fixed-bucket latency histograms, rendered in the Prometheus
// text exposition format. It exists so the service can expose a
// /metrics endpoint without pulling a client library into a module
// that is otherwise pure standard library.
//
// All instruments are safe for concurrent use and lock-free on the
// hot path (a single atomic add per observation); the only lock
// guards instrument registration, which happens at start-up.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry holds a set of named instruments and renders them.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
	// order preserves registration order for stable rendering.
	order []string
}

// family groups all instruments sharing one metric name (differing
// only in labels), so HELP/TYPE headers render once per name.
type family struct {
	name, help, typ string
	instruments     []renderable
}

type renderable interface {
	render(w io.Writer, name string)
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

func (r *Registry) register(name, help, typ string, inst renderable) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.fams[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ}
		r.fams[name] = f
		r.order = append(r.order, name)
	}
	if f.typ != typ {
		panic(fmt.Sprintf("metrics: %s registered as both %s and %s", name, f.typ, typ))
	}
	f.instruments = append(f.instruments, inst)
}

// Counter registers and returns a monotonically increasing counter.
// Labels are constant key/value pairs attached to every sample.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	c := &Counter{labels: renderLabels(labels)}
	r.register(name, help, "counter", c)
	return c
}

// Gauge registers and returns a gauge (a value that can go down).
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	g := &Gauge{labels: renderLabels(labels)}
	r.register(name, help, "gauge", g)
	return g
}

// Histogram registers and returns a fixed-bucket histogram. Bounds are
// inclusive upper bucket bounds in ascending order; a +Inf bucket is
// implicit. A nil bounds slice selects DefaultLatencyBuckets.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...string) *Histogram {
	if bounds == nil {
		bounds = DefaultLatencyBuckets()
	}
	if !sort.Float64sAreSorted(bounds) {
		panic("metrics: histogram bounds must be sorted")
	}
	h := &Histogram{
		labels: renderLabels(labels),
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
	r.register(name, help, "histogram", h)
	return h
}

// DefaultLatencyBuckets spans 1 µs to 2.5 s in a 1-2.5-5 progression,
// suitable for in-process decision latencies measured in seconds.
func DefaultLatencyBuckets() []float64 {
	var b []float64
	for _, e := range []float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1} {
		b = append(b, e, 2.5*e, 5*e)
	}
	return b
}

// StageLatencyBuckets spans 100 ns to 50 ms in the same 1-2.5-5
// progression, for the decide path's per-stage spans: individual
// stages (filter, score, switch, agent update) run in hundreds of
// nanoseconds to microseconds, below DefaultLatencyBuckets'
// resolution floor.
func StageLatencyBuckets() []float64 {
	var b []float64
	for _, e := range []float64{1e-7, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2} {
		b = append(b, e, 2.5*e, 5*e)
	}
	return b
}

// WritePrometheus renders every registered instrument in the
// Prometheus text exposition format (version 0.0.4).
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, name := range r.order {
		f := r.fams[name]
		fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help)
		fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ)
		for _, inst := range f.instruments {
			inst.render(w, f.name)
		}
	}
}

// renderLabels turns ("k","v","k2","v2") into `{k="v",k2="v2"}`.
func renderLabels(kv []string) string {
	if len(kv) == 0 {
		return ""
	}
	if len(kv)%2 != 0 {
		panic("metrics: odd label key/value list")
	}
	var b strings.Builder
	b.WriteByte('{')
	for i := 0; i < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", kv[i], kv[i+1])
	}
	b.WriteByte('}')
	return b.String()
}

// mergeLabels splices an extra label into an already-rendered label
// set (used for the histogram's le label).
func mergeLabels(labels, extra string) string {
	if labels == "" {
		return "{" + extra + "}"
	}
	return labels[:len(labels)-1] + "," + extra + "}"
}

// Counter is a monotonically increasing counter.
type Counter struct {
	labels string
	v      atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative).
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

func (c *Counter) render(w io.Writer, name string) {
	fmt.Fprintf(w, "%s%s %d\n", name, c.labels, c.v.Load())
}

// Gauge is a value that can move in both directions.
type Gauge struct {
	labels string
	v      atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the value by delta (negative to decrease).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

func (g *Gauge) render(w io.Writer, name string) {
	fmt.Fprintf(w, "%s%s %d\n", name, g.labels, g.v.Load())
}

// Histogram is a fixed-bucket histogram with cumulative bucket
// rendering, a sum and a count, as Prometheus expects.
type Histogram struct {
	labels string
	bounds []float64
	// counts[i] is the number of observations in bucket i (bucket
	// len(bounds) is the +Inf overflow); rendering accumulates them.
	counts  []atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// Binary search for the first bound >= v.
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Quantile estimates the q-quantile (q in [0,1]) from the bucket
// counts by linear interpolation within the winning bucket. It is an
// estimate bounded by the bucket resolution — good enough for p50/p95
// reporting, not for exact latencies.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	cum := uint64(0)
	lo := 0.0
	for i, bound := range h.bounds {
		n := h.counts[i].Load()
		if float64(cum)+float64(n) >= rank {
			if n == 0 {
				return bound
			}
			frac := (rank - float64(cum)) / float64(n)
			return lo + frac*(bound-lo)
		}
		cum += n
		lo = bound
	}
	return h.bounds[len(h.bounds)-1]
}

func (h *Histogram) render(w io.Writer, name string) {
	cum := uint64(0)
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		le := mergeLabels(h.labels, fmt.Sprintf(`le="%g"`, bound))
		fmt.Fprintf(w, "%s_bucket%s %d\n", name, le, cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	le := mergeLabels(h.labels, `le="+Inf"`)
	fmt.Fprintf(w, "%s_bucket%s %d\n", name, le, cum)
	fmt.Fprintf(w, "%s_sum%s %g\n", name, h.labels, h.Sum())
	fmt.Fprintf(w, "%s_count%s %d\n", name, h.labels, h.count.Load())
}
