package metrics

import (
	"math"
	"sort"
	"strings"
	"sync"
	"testing"
)

func TestCounterAndGaugeRender(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("clr_fleet_decisions_total", "Total decisions.")
	ce := r.Counter("clr_http_requests_total", "Requests.", "endpoint", "qos")
	g := r.Gauge("clr_fleet_devices", "Registered devices.")
	c.Inc()
	c.Add(4)
	ce.Inc()
	g.Add(3)
	g.Add(-1)
	if c.Value() != 5 {
		t.Errorf("counter = %d, want 5", c.Value())
	}
	if g.Value() != 2 {
		t.Errorf("gauge = %d, want 2", g.Value())
	}
	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		"# HELP clr_fleet_decisions_total Total decisions.",
		"# TYPE clr_fleet_decisions_total counter",
		"clr_fleet_decisions_total 5",
		`clr_http_requests_total{endpoint="qos"} 1`,
		"# TYPE clr_fleet_devices gauge",
		"clr_fleet_devices 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered output missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramBucketsCumulative(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "Latency.", []float64{0.001, 0.01, 0.1})
	for _, v := range []float64{0.0005, 0.001, 0.005, 0.05, 5} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("count = %d, want 5", h.Count())
	}
	if math.Abs(h.Sum()-5.0565) > 1e-12 {
		t.Errorf("sum = %v, want 5.0565", h.Sum())
	}
	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		`lat_bucket{le="0.001"} 2`,
		`lat_bucket{le="0.01"} 3`,
		`lat_bucket{le="0.1"} 4`,
		`lat_bucket{le="+Inf"} 5`,
		"lat_count 5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered output missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q", "Quantiles.", []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i%10) + 0.5)
	}
	p50 := h.Quantile(0.50)
	if p50 < 3 || p50 > 7 {
		t.Errorf("p50 = %v, want near the middle of a uniform 0.5..9.5 stream", p50)
	}
	if got := h.Quantile(0); got < 0 || got > 1 {
		t.Errorf("q0 = %v", got)
	}
	empty := r.Histogram("e", "Empty.", nil)
	if empty.Quantile(0.99) != 0 {
		t.Error("empty histogram quantile should be 0")
	}
}

func TestDefaultLatencyBucketsSorted(t *testing.T) {
	b := DefaultLatencyBuckets()
	if !sort.Float64sAreSorted(b) {
		t.Fatalf("default buckets not sorted: %v", b)
	}
	if b[0] != 1e-6 || b[len(b)-1] != 5 {
		t.Errorf("unexpected bucket envelope: %v .. %v", b[0], b[len(b)-1])
	}
}

func TestStageLatencyBucketsSorted(t *testing.T) {
	b := StageLatencyBuckets()
	if !sort.Float64sAreSorted(b) {
		t.Fatalf("stage buckets not sorted: %v", b)
	}
	if b[0] != 1e-7 || b[len(b)-1] != 5e-2 {
		t.Errorf("unexpected bucket envelope: %v .. %v", b[0], b[len(b)-1])
	}
	// Stage buckets must resolve sub-microsecond spans, which the
	// default buckets lump into their first bucket.
	if b[0] >= DefaultLatencyBuckets()[0] {
		t.Errorf("stage buckets do not extend below the default floor")
	}
}

func TestConcurrentObservations(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c", "c")
	h := r.Histogram("h", "h", nil)
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				h.Observe(float64(i) * 1e-6)
			}
		}(w)
	}
	wg.Wait()
	if c.Value() != workers*per {
		t.Errorf("counter = %d, want %d", c.Value(), workers*per)
	}
	if h.Count() != workers*per {
		t.Errorf("histogram count = %d, want %d", h.Count(), workers*per)
	}
}
