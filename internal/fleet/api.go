package fleet

// JSON wire types of the decision service's v1 API, and their
// conversions to and from the internal runtime/mapping types. The
// wire shape is deliberately flat and snake_cased so non-Go device
// firmware can consume it without a schema compiler.

import (
	"fmt"
	"time"

	"clrdse/internal/mapping"
	"clrdse/internal/obs"
	"clrdse/internal/runtime"
)

// QoSSpecJSON is one (S_SPEC, F_SPEC) requirement on the wire.
type QoSSpecJSON struct {
	SMaxMs float64 `json:"s_max_ms"`
	FMin   float64 `json:"f_min"`
}

// Spec converts to the internal type.
func (q QoSSpecJSON) Spec() runtime.QoSSpec {
	return runtime.QoSSpec{SMaxMs: q.SMaxMs, FMin: q.FMin}
}

func (q QoSSpecJSON) validate() error {
	if q.SMaxMs <= 0 {
		return fmt.Errorf("s_max_ms must be positive, got %v", q.SMaxMs)
	}
	if q.FMin < 0 || q.FMin > 1 {
		return fmt.Errorf("f_min must be in [0,1], got %v", q.FMin)
	}
	return nil
}

// QoSRequest is the body of POST /v1/devices/{id}/qos. Seq, when
// positive, is the device's monotonically increasing event sequence
// number: retries of a failed event reuse its Seq, and the server
// answers already-decided sequences from its per-device decision
// cache instead of re-deciding — at-least-once delivery, exactly-once
// decisions. Seq 0 (or absent) preserves the v1 fire-and-forget
// semantics.
type QoSRequest struct {
	QoSSpecJSON
	Seq uint64 `json:"seq,omitempty"`
}

// RegisterRequest is the body of POST /v1/devices.
type RegisterRequest struct {
	ID       string `json:"id"`
	Database string `json:"database"`
	// PRC is the pRC knob in [0,1].
	PRC float64 `json:"prc"`
	// Trigger is "always" (default) or "on-violation".
	Trigger string `json:"trigger,omitempty"`
	// Policy is "ret" (default) or "hypervolume".
	Policy string `json:"policy,omitempty"`
	// Gamma > 0 upgrades uRA to AuRA.
	Gamma float64 `json:"gamma,omitempty"`
	// MeanInterArrivalCycles calibrates the AuRA episode clock.
	MeanInterArrivalCycles float64     `json:"mean_interarrival_cycles,omitempty"`
	Initial                QoSSpecJSON `json:"initial"`
}

// Params converts the request to registry parameters.
func (r RegisterRequest) Params() (DeviceParams, error) {
	if err := r.Initial.validate(); err != nil {
		return DeviceParams{}, fmt.Errorf("initial: %w", err)
	}
	trig, err := ParseTrigger(r.Trigger)
	if err != nil {
		return DeviceParams{}, err
	}
	pol, err := ParsePolicy(r.Policy)
	if err != nil {
		return DeviceParams{}, err
	}
	return DeviceParams{
		ID:                     r.ID,
		Database:               r.Database,
		PRC:                    r.PRC,
		Trigger:                trig,
		Policy:                 pol,
		Gamma:                  r.Gamma,
		MeanInterArrivalCycles: r.MeanInterArrivalCycles,
		Initial:                r.Initial.Spec(),
	}, nil
}

// ParseTrigger maps the wire spelling to the runtime constant; the
// empty string selects TriggerAlways.
func ParseTrigger(s string) (runtime.Trigger, error) {
	switch s {
	case "", "always":
		return runtime.TriggerAlways, nil
	case "on-violation":
		return runtime.TriggerOnViolation, nil
	default:
		return 0, fmt.Errorf("unknown trigger %q (want \"always\" or \"on-violation\")", s)
	}
}

// ParsePolicy maps the wire spelling to the runtime constant; the
// empty string selects PolicyRET.
func ParsePolicy(s string) (runtime.Policy, error) {
	switch s {
	case "", "ret":
		return runtime.PolicyRET, nil
	case "hypervolume":
		return runtime.PolicyHypervolume, nil
	default:
		return 0, fmt.Errorf("unknown policy %q (want \"ret\" or \"hypervolume\")", s)
	}
}

// ActionJSON is one imperative reconfiguration step on the wire.
type ActionJSON struct {
	// Kind is "copy-binary", "load-bitstream", "set-clr" or "reorder".
	Kind      string  `json:"kind"`
	Task      int     `json:"task"`
	PE        int     `json:"pe"`
	PRR       int     `json:"prr"`
	Bitstream int     `json:"bitstream"`
	CostMs    float64 `json:"cost_ms"`
}

func actionJSON(a mapping.Action) ActionJSON {
	return ActionJSON{
		Kind:      a.Kind.String(),
		Task:      a.Task,
		PE:        a.PE,
		PRR:       a.PRR,
		Bitstream: a.Bitstream,
		CostMs:    a.CostMs,
	}
}

// DecisionJSON is the body returned by POST /v1/devices/{id}/qos: the
// decision together with the imperative reconfiguration plan, exactly
// what runtime.Manager.OnQoSChange returns.
type DecisionJSON struct {
	Device string `json:"device"`
	// Seq echoes the request's sequence number; replayed decisions
	// are byte-identical to the original answer.
	Seq          uint64 `json:"seq,omitempty"`
	From         int    `json:"from"`
	To           int    `json:"to"`
	Reconfigured bool   `json:"reconfigured"`
	Violated     bool   `json:"violated"`
	// Degraded reports the decision path faulted or missed its
	// deadline and the device stayed at its last known-good
	// configuration (From == To, zero cost, no plan).
	Degraded bool `json:"degraded,omitempty"`
	// CostMs is the scalar dRC of the transition.
	CostMs float64 `json:"cost_ms"`
	// BinaryMigrationMs/BitstreamMs decompose CostMs; MigratedTasks
	// and ReloadedPRRs count the moved artefacts.
	BinaryMigrationMs float64      `json:"binary_migration_ms"`
	BitstreamMs       float64      `json:"bitstream_ms"`
	MigratedTasks     int          `json:"migrated_tasks"`
	ReloadedPRRs      int          `json:"reloaded_prrs"`
	Plan              []ActionJSON `json:"plan,omitempty"`
}

// decisionJSON flattens a runtime decision for the wire.
func decisionJSON(id string, d runtime.Decision) DecisionJSON {
	out := DecisionJSON{
		Device:            id,
		From:              d.From,
		To:                d.To,
		Reconfigured:      d.Reconfigured,
		Violated:          d.Violated,
		CostMs:            d.Cost.Total(),
		BinaryMigrationMs: d.Cost.BinaryMigrationMs,
		BitstreamMs:       d.Cost.BitstreamMs,
		MigratedTasks:     d.Cost.MigratedTasks,
		ReloadedPRRs:      d.Cost.ReloadedPRRs,
	}
	for _, a := range d.Plan {
		out.Plan = append(out.Plan, actionJSON(a))
	}
	return out
}

// DeviceJSON is the body returned by device registration and GET
// /v1/devices/{id}.
type DeviceJSON struct {
	ID       string `json:"id"`
	Database string `json:"database"`
	// Point is the stored design-point ID in force, with its metrics.
	Point       int     `json:"point"`
	MakespanMs  float64 `json:"makespan_ms"`
	Reliability float64 `json:"reliability"`
	EnergyMJ    float64 `json:"energy_mj"`
	// Cumulative decision history.
	Decisions    int64     `json:"decisions"`
	Reconfigs    int64     `json:"reconfigs"`
	Violations   int64     `json:"violations"`
	TotalDRCMs   float64   `json:"total_drc_ms"`
	Migrations   int64     `json:"migrations"`
	RegisteredAt time.Time `json:"registered_at"`
}

func deviceJSON(info *DeviceInfo) DeviceJSON {
	return DeviceJSON{
		ID:           info.ID,
		Database:     info.Database,
		Point:        info.Point,
		MakespanMs:   info.MakespanMs,
		Reliability:  info.Reliability,
		EnergyMJ:     info.EnergyMJ,
		Decisions:    info.Stats.Decisions,
		Reconfigs:    info.Stats.Reconfigs,
		Violations:   info.Stats.Violations,
		TotalDRCMs:   info.Stats.TotalDRCMs,
		Migrations:   info.Stats.Migrations,
		RegisteredAt: info.RegisteredAt,
	}
}

// DatabaseJSON describes one registered database in GET /v1/databases,
// including the QoS envelope spanned by its stored points (the region
// registrants should draw satisfiable specifications from).
type DatabaseJSON struct {
	Name string `json:"name"`
	// Version is the database's evolution generation (0 = the
	// design-time original; bumped by each Continuous-ReD cutover).
	Version        uint64  `json:"version"`
	Points         int     `json:"points"`
	MinMakespanMs  float64 `json:"min_makespan_ms"`
	MaxMakespanMs  float64 `json:"max_makespan_ms"`
	MinReliability float64 `json:"min_reliability"`
	MaxReliability float64 `json:"max_reliability"`
}

func databaseJSON(n NamedDatabase) DatabaseJSON {
	minS, maxS, minF, maxF := n.Envelope()
	return DatabaseJSON{
		Name:           n.Name,
		Version:        n.DB.Version,
		Points:         n.DB.Len(),
		MinMakespanMs:  minS,
		MaxMakespanMs:  maxS,
		MinReliability: minF,
		MaxReliability: maxF,
	}
}

// BatchEventJSON is one QoS event inside POST /v1/devices:decide-batch
// — the single-event QoSRequest plus the device it addresses. Events
// for one device decide in batch order; Seq semantics are identical to
// the single-event path.
type BatchEventJSON struct {
	Device string `json:"device"`
	Seq    uint64 `json:"seq,omitempty"`
	QoSSpecJSON
}

// BatchRequestJSON is the body of POST /v1/devices:decide-batch.
type BatchRequestJSON struct {
	Events []BatchEventJSON `json:"events"`
}

// BatchResultJSON is one event's outcome inside a batch response.
// Exactly one of Decision/Error is set; Status is the HTTP status the
// same event would have earned on the single-event path (200 carries a
// decision — possibly replayed or degraded — anything else an error).
// A failed event never poisons its neighbours.
type BatchResultJSON struct {
	Status   int           `json:"status"`
	Decision *DecisionJSON `json:"decision,omitempty"`
	Error    string        `json:"error,omitempty"`
}

// BatchResponseJSON is the body answered by the batch endpoint:
// Results[i] is Events[i]'s outcome, index-aligned.
type BatchResponseJSON struct {
	Results []BatchResultJSON `json:"results"`
}

// decisionJSONInto is decisionJSON writing into pooled scratch: every
// field of dj is overwritten (no stale-field leaks) and dj.Plan's
// backing array is reused. The serialised bytes stay identical to the
// fresh-allocation path — `plan,omitempty` omits empty and nil slices
// alike, so plan-less decisions never expose the reused capacity.
func decisionJSONInto(dj *DecisionJSON, id string, d runtime.Decision) {
	plan := dj.Plan[:0]
	for _, a := range d.Plan {
		plan = append(plan, actionJSON(a))
	}
	*dj = DecisionJSON{
		Device:            id,
		From:              d.From,
		To:                d.To,
		Reconfigured:      d.Reconfigured,
		Violated:          d.Violated,
		CostMs:            d.Cost.Total(),
		BinaryMigrationMs: d.Cost.BinaryMigrationMs,
		BitstreamMs:       d.Cost.BitstreamMs,
		MigratedTasks:     d.Cost.MigratedTasks,
		ReloadedPRRs:      d.Cost.ReloadedPRRs,
		Plan:              plan,
	}
}

// ErrorJSON is the body of every non-2xx response.
type ErrorJSON struct {
	Error string `json:"error"`
}

// EvolveJSON is the body of GET /debug/evolve: every cohort's
// Continuous-ReD state (versions, shadow window, recent divergences).
type EvolveJSON struct {
	Databases []EvolveStatus `json:"databases"`
}

// CohortJSON is the body of GET /debug/cohort: every cohort's
// value-table state (version, epoch, fingerprints, provenance).
type CohortJSON struct {
	Databases []ValueTableStatus `json:"databases"`
}

// DecisionsJSON is the body of GET /debug/decisions: the decision
// journal's retained entries, oldest first.
type DecisionsJSON struct {
	// Count is len(Decisions).
	Count int `json:"count"`
	// Device echoes the ?device= filter ("" = whole fleet).
	Device string `json:"device,omitempty"`
	// Decisions are the journal entries.
	Decisions []obs.Entry `json:"decisions"`
}
