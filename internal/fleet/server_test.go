package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"clrdse/internal/runtime"
)

// quietLogger drops request logs so test output stays readable.
func quietLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// postJSON posts a body and decodes the response when out is non-nil,
// enforcing the expected status.
func postJSON(client *http.Client, url string, body any, wantStatus int, out any) error {
	data, err := json.Marshal(body)
	if err != nil {
		return err
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		var apiErr ErrorJSON
		_ = json.NewDecoder(resp.Body).Decode(&apiErr)
		return fmt.Errorf("status %s: %s", resp.Status, apiErr.Error)
	}
	if out != nil {
		return json.NewDecoder(resp.Body).Decode(out)
	}
	return nil
}

// bootServer starts the service on a real loopback listener and
// returns its base URL; cleanup drains and stops it.
func bootServer(t *testing.T) (*Server, string) {
	t.Helper()
	srv, err := NewServer(ServerConfig{
		Databases: fleetDatabases(t),
		Logger:    quietLogger(),
	})
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()
	t.Cleanup(func() {
		if err := srv.Shutdown(); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		if err := <-done; err != http.ErrServerClosed {
			t.Errorf("serve returned %v", err)
		}
	})
	return srv, "http://" + l.Addr().String()
}

// TestServerEndToEndMatchesManager is the acceptance test: a booted
// clrserved-equivalent server must return, for the same database and
// QoS sequence, decisions identical to a direct in-process
// runtime.Manager — with the devices registered and driven
// concurrently over real HTTP.
func TestServerEndToEndMatchesManager(t *testing.T) {
	f := getFixture(t)
	_, base := bootServer(t)
	client := &http.Client{Timeout: 10 * time.Second}

	const devices, events = 8, 30
	scripts := make([][]runtime.QoSSpec, devices)
	for d := range scripts {
		scripts[d] = deviceScript(f.red, int64(500+d), events)
	}
	boot := looseSpec(f.red)

	// Reference decisions from direct in-process managers.
	want := make([][]string, devices)
	for d := 0; d < devices; d++ {
		mgr, err := runtime.NewManager(runtime.ManagerParams{
			DB: f.red, Space: f.problem.Space, PRC: 0.5,
			Trigger: runtime.TriggerOnViolation,
		}, boot)
		if err != nil {
			t.Fatal(err)
		}
		for _, spec := range scripts[d] {
			want[d] = append(want[d], decisionKey(t, mgr.OnQoSChange(spec)))
		}
	}

	// The same traffic over HTTP, all devices concurrently.
	got := make([][]string, devices)
	var wg sync.WaitGroup
	for d := 0; d < devices; d++ {
		wg.Add(1)
		go func(d int) {
			defer wg.Done()
			id := fmt.Sprintf("e2e-%d", d)
			err := postJSON(client, base+"/v1/devices", RegisterRequest{
				ID: id, Database: "red", PRC: 0.5, Trigger: "on-violation",
				Initial: QoSSpecJSON{SMaxMs: boot.SMaxMs, FMin: boot.FMin},
			}, http.StatusCreated, nil)
			if err != nil {
				t.Errorf("register %s: %v", id, err)
				return
			}
			for _, spec := range scripts[d] {
				var dec DecisionJSON
				err := postJSON(client, base+"/v1/devices/"+id+"/qos",
					QoSSpecJSON{SMaxMs: spec.SMaxMs, FMin: spec.FMin}, http.StatusOK, &dec)
				if err != nil {
					t.Errorf("qos %s: %v", id, err)
					return
				}
				dec.Device = "x" // normalise for comparison with decisionKey
				b, err := json.Marshal(dec)
				if err != nil {
					t.Error(err)
					return
				}
				got[d] = append(got[d], string(b))
			}
		}(d)
	}
	wg.Wait()

	for d := 0; d < devices; d++ {
		if len(got[d]) != len(want[d]) {
			t.Fatalf("device %d: %d HTTP decisions vs %d in-process", d, len(got[d]), len(want[d]))
		}
		for i := range want[d] {
			if got[d][i] != want[d][i] {
				t.Fatalf("device %d event %d:\n  http:       %s\n  in-process: %s",
					d, i, got[d][i], want[d][i])
			}
		}
	}

	// Device snapshots reflect the served traffic.
	var info DeviceJSON
	resp, err := client.Get(base + "/v1/devices/e2e-0")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if info.Decisions != events {
		t.Errorf("device decisions = %d, want %d", info.Decisions, events)
	}
}

func TestServerErrorMapping(t *testing.T) {
	f := getFixture(t)
	srv, err := NewServer(ServerConfig{
		Databases:    fleetDatabases(t),
		Logger:       quietLogger(),
		MaxBodyBytes: 256,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := ts.Client()
	boot := looseSpec(f.red)

	post := func(path, body string) int {
		resp, err := client.Post(ts.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}

	if got := post("/v1/devices/ghost/qos", `{"s_max_ms":10,"f_min":0.5}`); got != http.StatusNotFound {
		t.Errorf("unknown device -> %d, want 404", got)
	}
	if got := post("/v1/devices", `{not json`); got != http.StatusBadRequest {
		t.Errorf("malformed body -> %d, want 400", got)
	}
	if got := post("/v1/devices", `{"id":"x","database":"red","unknown_field":1}`); got != http.StatusBadRequest {
		t.Errorf("unknown field -> %d, want 400", got)
	}
	reg := fmt.Sprintf(`{"id":"x","database":"red","initial":{"s_max_ms":%g,"f_min":%g}}`, boot.SMaxMs, boot.FMin)
	if got := post("/v1/devices", reg); got != http.StatusCreated {
		t.Fatalf("register -> %d, want 201", got)
	}
	if got := post("/v1/devices", reg); got != http.StatusConflict {
		t.Errorf("duplicate register -> %d, want 409", got)
	}
	// The padding must sit inside the JSON value: the decoder stops
	// reading at the end of the document, so trailing bytes would never
	// hit the MaxBytesReader.
	big := fmt.Sprintf(`{"id":"big%s","database":"red","initial":{"s_max_ms":10,"f_min":0.5}}`, strings.Repeat("g", 512))
	if got := post("/v1/devices", big); got != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body -> %d, want 413", got)
	}
	if got := post("/v1/devices/x/qos", `{"s_max_ms":-1,"f_min":0.5}`); got != http.StatusBadRequest {
		t.Errorf("invalid spec -> %d, want 400", got)
	}

	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/devices/x", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Errorf("delete -> %d, want 204", resp.StatusCode)
	}

	// Health and database listing.
	get := func(path string) (int, string) {
		resp, err := client.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		io.Copy(&buf, resp.Body)
		resp.Body.Close()
		return resp.StatusCode, buf.String()
	}
	if code, body := get("/healthz"); code != http.StatusOK || !strings.Contains(body, `"status":"ok"`) {
		t.Errorf("healthz -> %d %q", code, body)
	}
	if code, body := get("/v1/databases"); code != http.StatusOK ||
		!strings.Contains(body, `"name":"red"`) || !strings.Contains(body, `"name":"based"`) {
		t.Errorf("databases -> %d %q", code, body)
	}
}

func TestServerGracefulShutdown(t *testing.T) {
	srv, err := NewServer(ServerConfig{
		Databases:     fleetDatabases(t),
		Logger:        quietLogger(),
		ShutdownGrace: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.Run(ctx, "127.0.0.1:0") }()
	// Give Run a moment to bind, then trigger the drain path.
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("Run returned %v, want nil after graceful drain", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not return after context cancellation")
	}
}
