package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"clrdse/internal/runtime"
)

// postRaw posts raw bytes and returns status + body.
func postRaw(client *http.Client, url, contentType string, body []byte) (int, []byte, error) {
	resp, err := client.Post(url, contentType, bytes.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	return resp.StatusCode, data, err
}

// TestDecodeJSONRejectsTrailingData is the regression test for the
// decode bug where everything after the first JSON value was silently
// ignored — `{...}{...}` decided on the first object's say-so.
func TestDecodeJSONRejectsTrailingData(t *testing.T) {
	_, base := bootServer(t)
	client := &http.Client{}
	spec := fleetDatabases(t)[0]
	_, maxS, minF, _ := spec.Envelope()
	reg := RegisterRequest{ID: "trail-1", Database: "red", PRC: 0.4,
		Initial: QoSSpecJSON{SMaxMs: maxS, FMin: minF}}
	if err := postJSON(client, base+"/v1/devices", reg, http.StatusCreated, nil); err != nil {
		t.Fatal(err)
	}
	good := fmt.Sprintf(`{"s_max_ms":%g,"f_min":%g}`, maxS, minF)
	cases := []struct {
		name, body string
		want       int
	}{
		{"clean value", good, http.StatusOK},
		{"trailing whitespace ok", good + "\n\t ", http.StatusOK},
		{"second object", good + good, http.StatusBadRequest},
		{"trailing garbage", good + "junk", http.StatusBadRequest},
		{"trailing bracket", good + "]", http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, body, err := postRaw(client, base+"/v1/devices/trail-1/qos", "application/json", []byte(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			if status != tc.want {
				t.Errorf("status = %d, want %d (body %s)", status, tc.want, body)
			}
		})
	}
}

// TestRegistryDecideBatch drives DecideBatch directly: per-device
// ordering, replay hits, pre-failed slots, unknown devices, and the
// multi-shard fan-out all in one batch.
func TestRegistryDecideBatch(t *testing.T) {
	f := getFixture(t)
	reg, err := NewRegistry(fleetDatabases(t), 4)
	if err != nil {
		t.Fatal(err)
	}
	q := runtime.ModelFromDatabase(f.red)
	tight := runtime.QoSSpec{SMaxMs: q.HiS, FMin: q.HiF}
	loose := looseSpec(f.red)
	// Enough devices to land on several of the 4 shards.
	for i := 0; i < 8; i++ {
		if _, err := reg.Register(DeviceParams{
			ID: fmt.Sprintf("b-%d", i), Database: "red", PRC: 0.4, Initial: loose,
		}); err != nil {
			t.Fatal(err)
		}
	}
	var events []BatchEvent
	for i := 0; i < 8; i++ {
		id := fmt.Sprintf("b-%d", i)
		events = append(events,
			BatchEvent{Device: id, Seq: 1, Spec: tight},
			BatchEvent{Device: id, Seq: 1, Spec: tight}, // retry: replay-cache hit
			BatchEvent{Device: id, Seq: 2, Spec: loose},
		)
	}
	// b-0's seq-2 slot is pre-failed below, so its cache stays at seq 1
	// — the stale probe targets b-1, whose cache did advance to 2.
	events = append(events,
		BatchEvent{Device: "ghost", Seq: 1, Spec: loose},
		BatchEvent{Device: "b-1", Seq: 1, Spec: tight}, // behind seq 2: stale
	)
	results := make([]BatchOutcome, len(events))
	results[2] = BatchOutcome{Err: errors.New("pre-failed by validation")}
	reg.DecideBatch(context.Background(), events, results)

	for i := 0; i < 8; i++ {
		first, retry, next := results[i*3], results[i*3+1], results[i*3+2]
		if i == 0 {
			// Slot 2 was pre-failed; DecideBatch must not have touched it.
			if next.Err == nil || next.Err.Error() != "pre-failed by validation" {
				t.Errorf("pre-failed slot overwritten: %+v", next)
			}
		} else if next.Err != nil {
			t.Errorf("device b-%d seq 2: %v", i, next.Err)
		}
		if first.Err != nil {
			t.Fatalf("device b-%d seq 1: %v", i, first.Err)
		}
		if retry.Err != nil || !retry.Out.Replayed {
			t.Errorf("device b-%d retry: want replay, got %+v err %v", i, retry.Out, retry.Err)
		}
		if !reflect.DeepEqual(retry.Out.Decision, first.Out.Decision) {
			t.Errorf("device b-%d: replayed decision differs from original", i)
		}
	}
	if err := results[24].Err; !errors.Is(err, ErrNoDevice) {
		t.Errorf("ghost event: want ErrNoDevice, got %v", err)
	}
	if err := results[25].Err; !errors.Is(err, ErrStaleSeq) {
		t.Errorf("stale event: want ErrStaleSeq, got %v", err)
	}

	// A second batch against the same registry: the pooled plan now
	// carries state from the first call, and a dirty reset once made it
	// drop every run whose shard it had already seen — events answered
	// as zero outcomes instead of replays and stales. Every slot must
	// carry a real verdict.
	again := []BatchEvent{
		{Device: "b-1", Seq: 2, Spec: loose}, // replay of the first batch's seq 2
		{Device: "b-2", Seq: 1, Spec: tight}, // behind seq 2: stale
		{Device: "b-3", Seq: 3, Spec: tight}, // fresh advance
	}
	againResults := make([]BatchOutcome, len(again))
	reg.DecideBatch(context.Background(), again, againResults)
	if r := againResults[0]; r.Err != nil || !r.Out.Replayed {
		t.Errorf("second batch replay: want replay, got %+v err %v", r.Out, r.Err)
	}
	if err := againResults[1].Err; !errors.Is(err, ErrStaleSeq) {
		t.Errorf("second batch stale: want ErrStaleSeq, got %v", err)
	}
	if r := againResults[2]; r.Err != nil || r.Out.Replayed || r.Out.Degraded {
		t.Errorf("second batch fresh: want fresh decision, got %+v err %v", r.Out, r.Err)
	}
}

// batchEquivSpecs builds a deterministic event script per device:
// alternating tight/loose specs with a retry and a stale entry mixed
// in, exercising fresh decisions, replay hits and per-event errors.
type equivEvent struct {
	dev  string
	seq  uint64
	spec QoSSpecJSON
}

func batchEquivScript(t *testing.T, devices []string) []equivEvent {
	f := getFixture(t)
	q := runtime.ModelFromDatabase(f.red)
	loose := looseSpec(f.red)
	tightJ := QoSSpecJSON{SMaxMs: q.HiS, FMin: q.HiF}
	looseJ := QoSSpecJSON{SMaxMs: loose.SMaxMs, FMin: loose.FMin}
	var script []equivEvent
	for round := 0; round < 3; round++ {
		for _, dev := range devices {
			spec := looseJ
			if round%2 == 0 {
				spec = tightJ
			}
			script = append(script, equivEvent{dev: dev, seq: uint64(round + 1), spec: spec})
		}
	}
	// Retries (replay hits) and errors, interleaved across devices.
	script = append(script,
		equivEvent{dev: devices[0], seq: 3, spec: looseJ},        // replay
		equivEvent{dev: devices[1], seq: 1, spec: tightJ},        // stale
		equivEvent{dev: "ghost", seq: 1, spec: looseJ},           // 404
		equivEvent{dev: devices[2], seq: 4, spec: QoSSpecJSON{}}, // invalid spec
		equivEvent{dev: devices[2], seq: 4, spec: tightJ},        // fresh after the invalid one
	)
	return script
}

// driveSingle sends the script one event at a time and returns, per
// event, the normalized decision JSON or "status error" string.
func driveSingle(t *testing.T, client *http.Client, base string, script []equivEvent) []string {
	t.Helper()
	out := make([]string, len(script))
	for i, ev := range script {
		body, err := json.Marshal(QoSRequest{QoSSpecJSON: ev.spec, Seq: ev.seq})
		if err != nil {
			t.Fatal(err)
		}
		status, data, err := postRaw(client, base+"/v1/devices/"+ev.dev+"/qos", "application/json", body)
		if err != nil {
			t.Fatal(err)
		}
		if status == http.StatusOK {
			out[i] = strings.TrimSpace(string(data))
			continue
		}
		var e ErrorJSON
		if err := json.Unmarshal(data, &e); err != nil {
			t.Fatalf("event %d: undecodable error body %q", i, data)
		}
		out[i] = fmt.Sprintf("%d %s", status, e.Error)
	}
	return out
}

// normalizeBatch renders batch results in driveSingle's normal form.
func normalizeBatch(t *testing.T, results []BatchResultJSON) []string {
	t.Helper()
	out := make([]string, len(results))
	for i, res := range results {
		if res.Status == http.StatusOK {
			data, err := json.Marshal(res.Decision)
			if err != nil {
				t.Fatal(err)
			}
			out[i] = string(data)
			continue
		}
		out[i] = fmt.Sprintf("%d %s", res.Status, res.Error)
	}
	return out
}

func registerEquivDevices(t *testing.T, client *http.Client, base string, devices []string) {
	t.Helper()
	f := getFixture(t)
	loose := looseSpec(f.red)
	for _, dev := range devices {
		req := RegisterRequest{ID: dev, Database: "red", PRC: 0.4,
			Initial: QoSSpecJSON{SMaxMs: loose.SMaxMs, FMin: loose.FMin}}
		if err := postJSON(client, base+"/v1/devices", req, http.StatusCreated, nil); err != nil {
			t.Fatal(err)
		}
	}
}

// TestBatchSingleEquivalence is the tentpole's correctness bar: the
// same event script through the batch endpoint (JSON and binary) must
// answer byte-identically to the single-event path — fresh decisions,
// replay hits, stale rejections, 404s and validation errors alike.
func TestBatchSingleEquivalence(t *testing.T) {
	devices := []string{"eq-a", "eq-b", "eq-c"}
	script := batchEquivScript(t, devices)
	client := &http.Client{}

	// Reference: one server driven event by event.
	_, singleBase := bootServer(t)
	registerEquivDevices(t, client, singleBase, devices)
	want := driveSingle(t, client, singleBase, script)

	events := make([]BatchEventJSON, len(script))
	for i, ev := range script {
		events[i] = BatchEventJSON{Device: ev.dev, Seq: ev.seq, QoSSpecJSON: ev.spec}
	}

	t.Run("json", func(t *testing.T) {
		_, base := bootServer(t)
		registerEquivDevices(t, client, base, devices)
		body, err := json.Marshal(BatchRequestJSON{Events: events})
		if err != nil {
			t.Fatal(err)
		}
		status, data, err := postRaw(client, base+"/v1/devices:decide-batch", "application/json", body)
		if err != nil {
			t.Fatal(err)
		}
		if status != http.StatusOK {
			t.Fatalf("batch status %d: %s", status, data)
		}
		var resp BatchResponseJSON
		if err := json.Unmarshal(data, &resp); err != nil {
			t.Fatal(err)
		}
		compareEquiv(t, script, want, normalizeBatch(t, resp.Results))
	})

	t.Run("binary", func(t *testing.T) {
		_, base := bootServer(t)
		registerEquivDevices(t, client, base, devices)
		body, err := AppendBatchRequest(nil, events)
		if err != nil {
			t.Fatal(err)
		}
		status, data, err := postRaw(client, base+"/v1/devices:decide-batch", BinContentType, body)
		if err != nil {
			t.Fatal(err)
		}
		if status != http.StatusOK {
			t.Fatalf("batch status %d: %s", status, data)
		}
		results, err := DecodeBatchResponse(data, nil)
		if err != nil {
			t.Fatal(err)
		}
		compareEquiv(t, script, want, normalizeBatch(t, results))
	})
}

func compareEquiv(t *testing.T, script []equivEvent, want, got []string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("result count %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d (%s seq %d):\n batch  %s\n single %s",
				i, script[i].dev, script[i].seq, got[i], want[i])
		}
	}
}

// TestBatchDegradedEquivalence injects a deterministic decide fault on
// both servers and checks the degraded stay-put answers match between
// the batch and single paths.
func TestBatchDegradedEquivalence(t *testing.T) {
	f := getFixture(t)
	loose := looseSpec(f.red)
	looseJ := QoSSpecJSON{SMaxMs: loose.SMaxMs, FMin: loose.FMin}
	q := runtime.ModelFromDatabase(f.red)
	tightJ := QoSSpecJSON{SMaxMs: q.HiS, FMin: q.HiF}
	hook := func(_ context.Context, id string, seq uint64) error {
		if id == "deg-a" && seq == 2 {
			return errors.New("injected decide fault")
		}
		return nil
	}
	boot := func() (string, *http.Client) {
		srv, err := NewServer(ServerConfig{
			Databases:  fleetDatabases(t),
			DecideHook: hook,
			Logger:     quietLogger(),
		})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(ts.Close)
		return ts.URL, ts.Client()
	}
	script := []equivEvent{
		{dev: "deg-a", seq: 1, spec: tightJ},
		{dev: "deg-a", seq: 2, spec: looseJ}, // faults: degraded stay-put
		{dev: "deg-a", seq: 3, spec: looseJ},
	}
	singleBase, client := boot()
	registerEquivDevices(t, client, singleBase, []string{"deg-a"})
	want := driveSingle(t, client, singleBase, script)
	if !strings.Contains(want[1], `"degraded":true`) {
		t.Fatalf("fault injection failed to degrade the single path: %s", want[1])
	}

	batchBase, client2 := boot()
	registerEquivDevices(t, client2, batchBase, []string{"deg-a"})
	events := make([]BatchEventJSON, len(script))
	for i, ev := range script {
		events[i] = BatchEventJSON{Device: ev.dev, Seq: ev.seq, QoSSpecJSON: ev.spec}
	}
	body, err := json.Marshal(BatchRequestJSON{Events: events})
	if err != nil {
		t.Fatal(err)
	}
	status, data, err := postRaw(client2, batchBase+"/v1/devices:decide-batch", "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	if status != http.StatusOK {
		t.Fatalf("batch status %d: %s", status, data)
	}
	var resp BatchResponseJSON
	if err := json.Unmarshal(data, &resp); err != nil {
		t.Fatal(err)
	}
	compareEquiv(t, script, want, normalizeBatch(t, resp.Results))
}

// TestBatchEndpointEdges covers the request-shape edges: empty batch,
// over-cap batch, and the content-type echo of the binary wire.
func TestBatchEndpointEdges(t *testing.T) {
	_, base := bootServer(t)
	client := &http.Client{}

	t.Run("empty batch", func(t *testing.T) {
		status, data, err := postRaw(client, base+"/v1/devices:decide-batch", "application/json", []byte(`{"events":[]}`))
		if err != nil {
			t.Fatal(err)
		}
		if status != http.StatusOK {
			t.Fatalf("status %d: %s", status, data)
		}
		var resp BatchResponseJSON
		if err := json.Unmarshal(data, &resp); err != nil {
			t.Fatal(err)
		}
		if len(resp.Results) != 0 {
			t.Errorf("want no results, got %d", len(resp.Results))
		}
	})

	t.Run("over cap", func(t *testing.T) {
		events := make([]BatchEventJSON, MaxBatchEvents+1)
		for i := range events {
			events[i] = BatchEventJSON{Device: "x", Seq: 1, QoSSpecJSON: QoSSpecJSON{SMaxMs: 1, FMin: 0.5}}
		}
		body, err := AppendBatchRequest(nil, events)
		if err != nil {
			t.Fatal(err)
		}
		status, data, err := postRaw(client, base+"/v1/devices:decide-batch", BinContentType, body)
		if err != nil {
			t.Fatal(err)
		}
		if status != http.StatusBadRequest {
			t.Errorf("status %d, want 400 (body %s)", status, data)
		}
	})

	t.Run("binary response content type", func(t *testing.T) {
		body, err := AppendBatchRequest(nil, []BatchEventJSON{
			{Device: "nope", Seq: 1, QoSSpecJSON: QoSSpecJSON{SMaxMs: 1, FMin: 0.5}},
		})
		if err != nil {
			t.Fatal(err)
		}
		resp, err := client.Post(base+"/v1/devices:decide-batch", BinContentType, bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if ct := resp.Header.Get("Content-Type"); ct != BinContentType {
			t.Errorf("Content-Type %q, want %q", ct, BinContentType)
		}
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		results, err := DecodeBatchResponse(data, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(results) != 1 || results[0].Status != http.StatusNotFound {
			t.Errorf("want one 404 result, got %+v", results)
		}
	})

	t.Run("malformed binary body", func(t *testing.T) {
		status, _, err := postRaw(client, base+"/v1/devices:decide-batch", BinContentType, []byte("CLRBjunk"))
		if err != nil {
			t.Fatal(err)
		}
		if status != http.StatusBadRequest {
			t.Errorf("status %d, want 400", status)
		}
	})
}
