package fleet

import (
	"errors"
	"testing"

	"clrdse/internal/runtime"
)

// cohortTable builds a valid value table bound to the cohort's active
// database, with deterministic synthetic values.
func cohortTable(t *testing.T, reg *Registry, name string, version uint64, gamma float64) *runtime.ValueTable {
	t.Helper()
	db, fp, err := reg.ActiveSnapshot(name)
	if err != nil {
		t.Fatal(err)
	}
	vt := &runtime.ValueTable{
		Version: version, Epoch: version, Gamma: gamma,
		DBVersion: db.Version, DBFingerprint: fp,
		Devices: 3, Events: 300,
		VR:     make([]float64, db.Len()),
		VD:     make([]float64, db.Len()),
		Visits: make([]int, db.Len()),
	}
	for i := range vt.VR {
		vt.VR[i] = -float64(i+1) * 0.25
		vt.VD[i] = float64(i) * 0.125
		vt.Visits[i] = 5 + i
	}
	return vt
}

func TestValueTablePublishLifecycle(t *testing.T) {
	reg, err := NewRegistry(fleetDatabases(t), 4)
	if err != nil {
		t.Fatal(err)
	}
	st, err := reg.ValueTableStatus("red")
	if err != nil {
		t.Fatal(err)
	}
	if st.HasTable {
		t.Fatal("fresh cohort reports a table")
	}
	if vt, err := reg.ValueTable("red"); err != nil || vt != nil {
		t.Fatalf("fresh cohort table = %v, %v; want nil, nil", vt, err)
	}

	v1 := cohortTable(t, reg, "red", 1, 0.8)
	if err := reg.PublishValueTable("red", v1); err != nil {
		t.Fatal(err)
	}
	st, _ = reg.ValueTableStatus("red")
	if !st.HasTable || st.Version != 1 || st.Epoch != 1 || st.Gamma != 0.8 {
		t.Fatalf("status after publish: %+v", st)
	}
	if st.Fingerprint != v1.Fingerprint() {
		t.Error("status fingerprint does not match the published table")
	}

	// A publish must advance the version.
	if err := reg.PublishValueTable("red", cohortTable(t, reg, "red", 1, 0.8)); !errors.Is(err, ErrValueTableVersion) {
		t.Errorf("same-version publish: %v, want ErrValueTableVersion", err)
	}
	// A table bound to other database content is skew.
	skew := cohortTable(t, reg, "red", 2, 0.8)
	skew.DBFingerprint++
	if err := reg.PublishValueTable("red", skew); !errors.Is(err, ErrValueTableSkew) {
		t.Errorf("mismatched binding: %v, want ErrValueTableSkew", err)
	}
	wrongVer := cohortTable(t, reg, "red", 2, 0.8)
	wrongVer.DBVersion++
	if err := reg.PublishValueTable("red", wrongVer); !errors.Is(err, ErrValueTableSkew) {
		t.Errorf("mismatched db version: %v, want ErrValueTableSkew", err)
	}
	if err := reg.PublishValueTable("red", nil); err == nil {
		t.Error("accepted nil table")
	}
	if err := reg.PublishValueTable("ghost", v1); !errors.Is(err, ErrNoDatabase) {
		t.Errorf("unknown cohort: %v, want ErrNoDatabase", err)
	}

	// v2 displaces v1; rollback restores it, one step only.
	v2 := cohortTable(t, reg, "red", 2, 0.8)
	v2.VR[0] = -99
	if err := reg.PublishValueTable("red", v2); err != nil {
		t.Fatal(err)
	}
	st, _ = reg.ValueTableStatus("red")
	if st.Version != 2 || !st.HasPrevious || st.PreviousVersion != 1 {
		t.Fatalf("status after v2: %+v", st)
	}
	if err := reg.RollbackValueTable("red"); err != nil {
		t.Fatal(err)
	}
	st, _ = reg.ValueTableStatus("red")
	if st.Version != 1 || st.HasPrevious {
		t.Fatalf("status after rollback: %+v", st)
	}
	// Rolling back the first publish reverts to "no table".
	if err := reg.RollbackValueTable("red"); err != nil {
		t.Fatal(err)
	}
	st, _ = reg.ValueTableStatus("red")
	if st.HasTable {
		t.Fatalf("rollback past the first publish left a table: %+v", st)
	}
	if err := reg.RollbackValueTable("red"); !errors.Is(err, ErrNoValueTable) {
		t.Errorf("rollback with no table: %v, want ErrNoValueTable", err)
	}
}

func TestValueTableAdoptTotalOrder(t *testing.T) {
	reg, err := NewRegistry(fleetDatabases(t), 4)
	if err != nil {
		t.Fatal(err)
	}
	v1 := cohortTable(t, reg, "red", 1, 0.8)
	if err := reg.AdoptValueTable("red", v1); err != nil {
		t.Fatal(err)
	}
	// Idempotent: adopting the exact active table is a no-op.
	if err := reg.AdoptValueTable("red", v1); err != nil {
		t.Fatalf("re-adopt of the active table: %v", err)
	}
	// Same version, different content: higher fingerprint wins.
	div := cohortTable(t, reg, "red", 1, 0.8)
	div.VR[0] = -123
	winner, loser := div, v1
	if div.Fingerprint() < v1.Fingerprint() {
		winner, loser = v1, div
	}
	errAdopt := reg.AdoptValueTable("red", div)
	if winner == div && errAdopt != nil {
		t.Fatalf("winning same-version adopt refused: %v", errAdopt)
	}
	if winner == v1 && !errors.Is(errAdopt, ErrValueTableVersion) {
		t.Fatalf("losing same-version adopt accepted: %v", errAdopt)
	}
	active, _ := reg.ValueTable("red")
	if active.Fingerprint() != winner.Fingerprint() {
		t.Error("active table is not the total-order winner")
	}
	// A lower version never wins, regardless of fingerprint.
	v2 := cohortTable(t, reg, "red", 2, 0.8)
	if err := reg.AdoptValueTable("red", v2); err != nil {
		t.Fatal(err)
	}
	if err := reg.AdoptValueTable("red", loser); !errors.Is(err, ErrValueTableVersion) {
		t.Errorf("behind-version adopt: %v, want ErrValueTableVersion", err)
	}
}

func TestCohortPriorInheritanceAndJournalStamp(t *testing.T) {
	f := getFixture(t)
	reg, err := NewRegistry(fleetDatabases(t), 4)
	if err != nil {
		t.Fatal(err)
	}
	spec := looseSpec(f.red)
	gamma := 0.8

	// A device registered before any publish journals VTVersion 0,
	// then re-seeds lazily once a table is published.
	if _, err := reg.Register(DeviceParams{
		ID: "early", Database: "red", PRC: 0.5, Gamma: gamma, Initial: spec,
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Decide("early", spec); err != nil {
		t.Fatal(err)
	}
	vt := cohortTable(t, reg, "red", 1, gamma)
	if err := reg.PublishValueTable("red", vt); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Decide("early", spec); err != nil {
		t.Fatal(err)
	}
	entries := reg.Decisions("early", 0)
	if len(entries) != 2 {
		t.Fatalf("journal holds %d entries, want 2", len(entries))
	}
	if entries[0].VTVersion != 0 {
		t.Errorf("pre-publish decision stamped vt v%d, want 0", entries[0].VTVersion)
	}
	if entries[1].VTVersion != 1 {
		t.Errorf("post-publish decision stamped vt v%d, want 1", entries[1].VTVersion)
	}

	// A device registered after the publish inherits at registration:
	// its very first decision is already stamped.
	if _, err := reg.Register(DeviceParams{
		ID: "cold", Database: "red", PRC: 0.5, Gamma: gamma, Initial: spec,
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Decide("cold", spec); err != nil {
		t.Fatal(err)
	}
	if es := reg.Decisions("cold", 0); len(es) != 1 || es[0].VTVersion != 1 {
		t.Fatalf("cold-start first decision stamped vt v%d, want 1", es[0].VTVersion)
	}

	// uRA devices (no agent) never apply a prior and keep stamping 0.
	if _, err := reg.Register(DeviceParams{
		ID: "ura", Database: "red", PRC: 0.5, Initial: spec,
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Decide("ura", spec); err != nil {
		t.Fatal(err)
	}
	if es := reg.Decisions("ura", 0); len(es) != 1 || es[0].VTVersion != 0 {
		t.Fatalf("uRA decision stamped vt v%d, want 0", es[0].VTVersion)
	}

	// Gamma mismatch: agent present but the table does not apply.
	if _, err := reg.Register(DeviceParams{
		ID: "mismatch", Database: "red", PRC: 0.5, Gamma: 0.5, Initial: spec,
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Decide("mismatch", spec); err != nil {
		t.Fatal(err)
	}
	if es := reg.Decisions("mismatch", 0); len(es) != 1 || es[0].VTVersion != 0 {
		t.Fatalf("gamma-mismatched decision stamped vt v%d, want 0", es[0].VTVersion)
	}
}

func TestGammaZeroCohortPriorPreservesURAFleet(t *testing.T) {
	// The fleet-level γ=0 identity the cohort-soak gate pins: a fleet
	// of AuRA(γ=0) devices seeded from a published cohort table must
	// decide byte-identically to a plain uRA fleet on the same script.
	f := getFixture(t)
	script := deviceScript(f.red, 902, 60)
	spec := looseSpec(f.red)

	run := func(withAgent bool, publish bool) []string {
		reg, err := NewRegistry(fleetDatabases(t), 4)
		if err != nil {
			t.Fatal(err)
		}
		if publish {
			if err := reg.PublishValueTable("red", cohortTable(t, reg, "red", 1, 0)); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := reg.Register(DeviceParams{
			ID: "dev", Database: "red", PRC: 0.5, WithAgent: withAgent, Initial: spec,
		}); err != nil {
			t.Fatal(err)
		}
		keys := make([]string, 0, len(script))
		for _, s := range script {
			dec, err := reg.Decide("dev", s)
			if err != nil {
				t.Fatal(err)
			}
			keys = append(keys, decisionKey(t, dec))
		}
		return keys
	}

	ura := run(false, false)
	aura0 := run(true, true)
	for i := range ura {
		if ura[i] != aura0[i] {
			t.Fatalf("decision %d diverged: uRA %s vs AuRA(γ=0)+prior %s", i, ura[i], aura0[i])
		}
	}
}
