package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"testing"

	"clrdse/internal/rng"
	"clrdse/internal/runtime"
)

// handoffScript precomputes a deterministic spec sequence from the
// database's envelope.
func handoffScript(t *testing.T, seed int64, n int) []runtime.QoSSpec {
	f := getFixture(t)
	model := runtime.ModelFromDatabase(f.red)
	src := rng.New(seed)
	stream := model.Stream()
	out := make([]runtime.QoSSpec, n)
	for i := range out {
		out[i] = stream.Next(src)
	}
	return out
}

// decideJSON canonicalises a decision for byte-level comparison.
func decideJSON(t *testing.T, dec runtime.Decision) string {
	b, err := json.Marshal(dec)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestHandoffRoundTrip is the heart of the cluster contract at the
// registry level: a device migrated mid-schedule by ExportRemove +
// ImportDevice keeps deciding byte-identically to a device that never
// moved, the replay cache travels, and the journal follows.
func TestHandoffRoundTrip(t *testing.T) {
	f := getFixture(t)
	dbs := fleetDatabases(t)
	mk := func() *Registry {
		reg, err := NewRegistry(dbs, 4)
		if err != nil {
			t.Fatal(err)
		}
		return reg
	}
	regA, regB, ref := mk(), mk(), mk()

	params := DeviceParams{
		ID: "mig-1", Database: "red", PRC: 0.5, Gamma: 0.9,
		Trigger: runtime.TriggerOnViolation, Initial: looseSpec(f.red),
	}
	if _, err := regA.Register(params); err != nil {
		t.Fatal(err)
	}
	if _, err := ref.Register(params); err != nil {
		t.Fatal(err)
	}

	const half, total = 12, 24
	script := handoffScript(t, 41, total)
	ctx := context.Background()

	for i := 0; i < half; i++ {
		seq := uint64(i + 1)
		got, err := regA.DecideCtx(ctx, "mig-1", seq, script[i])
		if err != nil {
			t.Fatal(err)
		}
		want, err := ref.DecideCtx(ctx, "mig-1", seq, script[i])
		if err != nil {
			t.Fatal(err)
		}
		if decideJSON(t, got.Decision) != decideJSON(t, want.Decision) {
			t.Fatalf("pre-move decision %d diverged from reference", seq)
		}
	}

	// Migrate A -> B.
	st, err := regA.ExportRemove("mig-1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := regA.Get("mig-1"); !errors.Is(err, ErrNoDevice) {
		t.Fatalf("device still visible on exporter after ExportRemove: %v", err)
	}
	if st.Stats.Decisions != half || len(st.Journal) != half {
		t.Fatalf("bundle carries %d decisions / %d journal entries, want %d / %d",
			st.Stats.Decisions, len(st.Journal), half, half)
	}
	if err := regB.ImportDevice(st); err != nil {
		t.Fatal(err)
	}
	if err := regB.ImportDevice(st); !errors.Is(err, ErrDeviceExists) {
		t.Fatalf("duplicate import = %v, want ErrDeviceExists", err)
	}

	// The replay cache travelled: re-sending the last pre-move sequence
	// number to the NEW node answers from the cache, unchanged.
	lastSpec := script[half-1]
	cached, err := regB.DecideCtx(ctx, "mig-1", half, lastSpec)
	if err != nil {
		t.Fatal(err)
	}
	if !cached.Replayed {
		t.Fatal("retried pre-move sequence was re-decided instead of replayed from the migrated cache")
	}
	if st.LastDec == nil || decideJSON(t, cached.Decision) != decideJSON(t, *st.LastDec) {
		t.Fatal("replayed decision differs from the migrated cache entry")
	}

	// Post-move decisions stay byte-identical to the never-moved
	// reference device.
	for i := half; i < total; i++ {
		seq := uint64(i + 1)
		got, err := regB.DecideCtx(ctx, "mig-1", seq, script[i])
		if err != nil {
			t.Fatal(err)
		}
		want, err := ref.DecideCtx(ctx, "mig-1", seq, script[i])
		if err != nil {
			t.Fatal(err)
		}
		if decideJSON(t, got.Decision) != decideJSON(t, want.Decision) {
			t.Fatalf("post-move decision %d diverged from reference", seq)
		}
	}

	// The importer's registry state is whole: cumulative stats and the
	// adopted-plus-new journal.
	info, err := regB.Get("mig-1")
	if err != nil {
		t.Fatal(err)
	}
	if info.Stats.Decisions != total {
		t.Fatalf("post-move decisions = %d, want %d", info.Stats.Decisions, total)
	}
	if n := len(regB.Decisions("mig-1", 0)); n != total {
		t.Fatalf("importer journal holds %d entries for device, want %d", n, total)
	}
}

func TestExportDeviceKeepsDevice(t *testing.T) {
	f := getFixture(t)
	reg, err := NewRegistry(fleetDatabases(t), 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Register(DeviceParams{
		ID: "peek-1", Database: "red", PRC: 0.4,
		Trigger: runtime.TriggerOnViolation, Initial: looseSpec(f.red),
	}); err != nil {
		t.Fatal(err)
	}
	st, err := reg.ExportDevice("peek-1")
	if err != nil {
		t.Fatal(err)
	}
	if st.Params.ID != "peek-1" {
		t.Fatalf("bundle params ID = %q", st.Params.ID)
	}
	if _, err := reg.Get("peek-1"); err != nil {
		t.Fatalf("ExportDevice must not deregister: %v", err)
	}
	if _, err := reg.ExportRemove("absent"); !errors.Is(err, ErrNoDevice) {
		t.Fatalf("ExportRemove(absent) = %v, want ErrNoDevice", err)
	}
}

func TestImportDeviceRejectsBadBundles(t *testing.T) {
	f := getFixture(t)
	reg, err := NewRegistry(fleetDatabases(t), 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.ImportDevice(nil); err == nil {
		t.Fatal("nil bundle accepted")
	}
	good := DeviceParams{
		ID: "imp-1", Database: "red", PRC: 0.4,
		Trigger: runtime.TriggerOnViolation, Initial: looseSpec(f.red),
	}
	unknownDB := &DeviceState{Params: good}
	unknownDB.Params.Database = "nope"
	if err := reg.ImportDevice(unknownDB); !errors.Is(err, ErrNoDatabase) {
		t.Fatalf("unknown database = %v, want ErrNoDatabase", err)
	}
	badPoint := &DeviceState{Params: good, Point: 1 << 20}
	if err := reg.ImportDevice(badPoint); err == nil {
		t.Fatal("out-of-range snapshot point accepted")
	}
}

// TestExportRemoveTombstonesOrphanedDecide pins the export/decide
// race: a decide that resolved the device before ExportRemove
// unpublished it must not commit to the orphaned object after the
// export releases the semaphore — its decision could never reach the
// already-pushed handoff bundle, and the importing node would
// re-decide that sequence number. The orphan must answer ErrNoDevice
// so the client re-resolves to the new owner.
func TestExportRemoveTombstonesOrphanedDecide(t *testing.T) {
	f := getFixture(t)
	reg, err := NewRegistry(fleetDatabases(t), 4)
	if err != nil {
		t.Fatal(err)
	}
	params := DeviceParams{
		ID: "orphan-1", Database: "red", PRC: 0.5,
		Trigger: runtime.TriggerOnViolation, Initial: looseSpec(f.red),
	}
	if _, err := reg.Register(params); err != nil {
		t.Fatal(err)
	}
	script := handoffScript(t, 43, 3)
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		if _, err := reg.DecideCtx(ctx, "orphan-1", uint64(i+1), script[i]); err != nil {
			t.Fatal(err)
		}
	}

	// A racing request resolves the device...
	d, err := reg.lookup("orphan-1")
	if err != nil {
		t.Fatal(err)
	}
	// ...then the export wins the unpublish and the snapshot.
	st, err := reg.ExportRemove("orphan-1")
	if err != nil {
		t.Fatal(err)
	}

	// The racing decide acquires the orphan's semaphore only after the
	// export released it — and must refuse to commit.
	if out, err := reg.decideOn(ctx, d, 3, script[2]); !errors.Is(err, ErrNoDevice) {
		t.Fatalf("decide on exported device = (%+v, %v), want ErrNoDevice", out, err)
	}

	// The degraded fallback must refuse too: a decide whose acquire
	// fails on an exported device re-resolves instead of degrading
	// (which would journal and gauge against the orphan).
	expired, cancel := context.WithCancel(ctx)
	cancel()
	d.sem <- struct{}{} // wedge the semaphore so acquire must give up
	out, err := reg.decideOn(expired, d, 3, script[2])
	<-d.sem
	if !errors.Is(err, ErrNoDevice) || out.Degraded {
		t.Fatalf("wedged decide on exported device = (%+v, %v), want ErrNoDevice", out, err)
	}

	// Nothing leaked past the export: the shard journal still holds
	// exactly the bundle's entries, and the bundle's cache is final.
	if got := len(reg.Decisions("orphan-1", 0)); got != len(st.Journal) {
		t.Fatalf("journal grew to %d entries after the export, want %d", got, len(st.Journal))
	}
	if st.LastSeq != 2 || !st.HaveLast {
		t.Fatalf("bundle replay cache = (seq %d, have %v), want (2, true)", st.LastSeq, st.HaveLast)
	}

	// Re-importing the bundle mints a fresh device object; the
	// tombstone stays on the orphan and the device decides again.
	if err := reg.ImportDevice(st); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.DecideCtx(ctx, "orphan-1", 3, script[2]); err != nil {
		t.Fatalf("decide after re-import: %v", err)
	}
}
