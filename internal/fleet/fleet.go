// Package fleet is the network-facing run-time layer at scale: where
// runtime.Manager embeds the paper's uRA/AuRA decision logic in one
// device's control loop, fleet hosts many such managers concurrently
// behind an HTTP/JSON API, in the spirit of the design-time/run-time
// split where a central entity serves precomputed operating points to
// a whole fleet of deployed systems.
//
// The core is a sharded, concurrency-safe device registry: device IDs
// hash onto a fixed set of shards, each guarded by its own RWMutex, so
// registrations and decisions for unrelated devices never contend on a
// single lock. Decisions for one device serialise on that device's own
// mutex, preserving the Manager's sequential semantics — the decision
// sequence for a device is byte-identical to feeding the same QoS
// events to a single in-process Manager.
package fleet

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"runtime/pprof"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"clrdse/internal/dse"
	"clrdse/internal/fleet/metrics"
	"clrdse/internal/mapping"
	"clrdse/internal/obs"
	"clrdse/internal/runtime"
)

// Registry errors, distinguished so the HTTP layer can map them to
// status codes.
var (
	// ErrDeviceExists reports a duplicate registration.
	ErrDeviceExists = errors.New("fleet: device already registered")
	// ErrNoDevice reports an unknown device ID.
	ErrNoDevice = errors.New("fleet: no such device")
	// ErrNoDatabase reports an unknown database name.
	ErrNoDatabase = errors.New("fleet: no such database")
	// ErrStaleSeq reports a QoS event whose sequence number is behind
	// the device's already-decided sequence — a late duplicate of an
	// event the device has moved past.
	ErrStaleSeq = errors.New("fleet: stale sequence number")
)

// DecideHook, when installed, runs inside the decision path before the
// manager decides, holding the device lock. A non-nil error (a fault:
// an injected stall that outlived the deadline, a corrupted database
// entry) makes the registry degrade to the device's last known-good
// configuration instead of deciding. Production deployments leave it
// nil; the chaos layer injects faults through it.
type DecideHook func(ctx context.Context, device string, seq uint64) error

// NamedDatabase couples a pruned design-point database with the
// mapping space it was built for, under the name devices register
// against.
type NamedDatabase struct {
	// Name is the registration key ("red", "based", ...).
	Name string
	// DB is the stored design-point database.
	DB *dse.Database
	// Space prices reconfigurations between the stored points.
	Space *mapping.Space

	// matrix is the precomputed pairwise dRC table over DB, built once
	// per database version and shared read-only by every device on
	// this database — registering a device costs O(|DB|) instead of the
	// O(|DB|^2) dRC computations a private table would need.
	matrix *mapping.DRCMatrix
	// keys/keyIdx are the per-point canonical mapping keys and their
	// reverse index, built with the matrix. Point IDs are only
	// meaningful within one database version; the keys identify
	// configurations across versions (shadow agreement, migration
	// remapping).
	keys   []string
	keyIdx map[string]int
	// fp is the content fingerprint (see Fingerprint), built with the
	// keys. Version numbers alone cannot distinguish two databases
	// independently evolved to the same number on different nodes; the
	// fingerprint can.
	fp uint64
}

// Envelope returns the database's QoS metric ranges — the satisfiable
// region load generators and registrants should draw specs from.
func (n NamedDatabase) Envelope() (minS, maxS, minF, maxF float64) {
	minS, maxS = math.Inf(1), math.Inf(-1)
	minF, maxF = math.Inf(1), math.Inf(-1)
	for _, p := range n.DB.Points {
		minS = math.Min(minS, p.MakespanMs)
		maxS = math.Max(maxS, p.MakespanMs)
		minF = math.Min(minF, p.Reliability)
		maxF = math.Max(maxF, p.Reliability)
	}
	return minS, maxS, minF, maxF
}

// DefaultShards is the registry's default shard count. 32 keeps lock
// contention negligible up to a few hundred concurrent requesters
// while wasting no measurable memory for small fleets.
const DefaultShards = 32

// DeviceParams registers one device.
type DeviceParams struct {
	// ID names the device; it must be non-empty and URL-path-safe.
	ID string
	// Database selects the NamedDatabase to decide against.
	Database string
	// PRC is the device's pRC knob in [0,1].
	PRC float64
	// Trigger selects when the device's manager re-optimises.
	Trigger runtime.Trigger
	// Policy selects the scoring rule.
	Policy runtime.Policy
	// Gamma, when positive, upgrades the device's uRA to AuRA with
	// this discount factor (stay-put prior value functions).
	Gamma float64
	// WithAgent forces an AuRA agent even at Gamma == 0. At gamma
	// zero the agent learns but never influences decisions (uRA is
	// subsumed into AuRA per the paper), which is exactly what the
	// cohort A/B harness needs to pin the uRA ≡ AuRA(γ=0) identity
	// while still accepting cohort priors and learning online.
	WithAgent bool
	// MeanInterArrivalCycles calibrates the agent's episode clock
	// (0 selects the paper's 100).
	MeanInterArrivalCycles float64
	// Initial is the device's boot QoS specification.
	Initial runtime.QoSSpec
}

func (p *DeviceParams) validate() error {
	if p.ID == "" {
		return fmt.Errorf("fleet: empty device ID")
	}
	for _, c := range p.ID {
		if c == '/' || c == '%' || c == ' ' {
			return fmt.Errorf("fleet: device ID %q contains %q; IDs must be URL-path-safe", p.ID, c)
		}
	}
	if p.PRC < 0 || p.PRC > 1 {
		return fmt.Errorf("fleet: pRC must be in [0,1], got %v", p.PRC)
	}
	if p.Gamma < 0 || p.Gamma >= 1 {
		return fmt.Errorf("fleet: gamma must be in [0,1), got %v", p.Gamma)
	}
	return nil
}

// DeviceStats accumulates one device's decision history.
type DeviceStats struct {
	// Decisions counts QoS events processed (each sequence number
	// exactly once; replays are counted separately).
	Decisions int64
	// Reconfigs counts decisions that moved the configuration.
	Reconfigs int64
	// Violations counts events whose spec no stored point satisfied.
	Violations int64
	// TotalDRCMs is the accumulated reconfiguration cost.
	TotalDRCMs float64
	// Migrations counts migrated task binaries.
	Migrations int64
	// Replays counts retried events answered from the decision cache.
	Replays int64
	// Degraded counts events answered with the last known-good
	// fallback because the decision path faulted or timed out.
	Degraded int64
}

// DeviceInfo is a point-in-time snapshot of one registered device.
type DeviceInfo struct {
	// ID and Database identify the device and its decision basis.
	ID, Database string
	// Point is the stored design-point ID in force.
	Point int
	// MakespanMs, Reliability, EnergyMJ are the point's metrics.
	MakespanMs, Reliability, EnergyMJ float64
	// Stats is the cumulative decision history.
	Stats DeviceStats
	// RegisteredAt is the registration instant.
	RegisteredAt time.Time
}

// device is one registered device. sem is a capacity-1 semaphore
// serialising decisions (preserving the manager's sequential
// semantics) while still letting a caller give up waiting when its
// deadline expires — a wedged decision on this device then degrades
// concurrent requests instead of hanging them. The degraded bits are
// atomics because the degraded path may run without the semaphore.
type device struct {
	sem    chan struct{}
	id     string
	dbName string
	state  *dbState     // the cohort's version state (immutable pointer)
	params DeviceParams // retained for cluster handoff (see ExportDevice)
	stats  DeviceStats
	regAt  time.Time

	// db and mgr are the database version this device currently serves
	// from and the manager built against it. syncVersion swaps them
	// under the device semaphore; they are atomic pointers because the
	// degraded path — which may run without the semaphore — reads them
	// to answer stay-put and stamp the journal's version.
	db  atomic.Pointer[NamedDatabase]
	mgr atomic.Pointer[runtime.Manager]

	// Version-migration state, touched only under the semaphore.
	// shadow/shadowDB dual-serve the cohort's candidate version;
	// prevMgr/prevDB retain the displaced pre-cutover manager for
	// one-step rollback; lastSpec is the device's most recent observed
	// specification, the boot spec for replacement managers.
	shadow   *runtime.Manager
	shadowDB *NamedDatabase
	prevMgr  *runtime.Manager
	prevDB   *NamedDatabase
	lastSpec runtime.QoSSpec
	haveSpec bool

	// Shadow-decision memo, valid only for agentless (uRA) shadow
	// managers, whose decision is a pure function of (current point,
	// spec): when the same spec arrives again with the shadow at the
	// same point, shadowScore replays the cached choice instead of
	// re-deciding. memoMgr keys the memo to one manager instance so a
	// version change self-invalidates it.
	memoMgr  *runtime.Manager
	memoFrom int
	memoSpec runtime.QoSSpec
	memoTo   int

	// Cohort value-table state. vtMgr/vtApplied (touched only under
	// the semaphore) pin which table was applied into which manager
	// instance, so a manager swap self-invalidates the prior;
	// vtVersion is the journal stamp — atomic because the degraded
	// path journals without the semaphore.
	vtMgr     *runtime.Manager
	vtApplied *runtime.ValueTable
	vtVersion atomic.Uint64

	// plabels is the pprof label set stamped on this device's decide
	// calls, built once at construction: pprof.Labels allocates, and
	// the decide path runs per event.
	plabels pprof.LabelSet

	// Replay cache: the last decided sequence number and its decision.
	// Retries of an event reuse its sequence number and are answered
	// from here, so at-least-once delivery yields exactly-once
	// decisions.
	lastSeq  uint64
	lastDec  runtime.Decision
	haveLast bool

	degraded  atomic.Bool  // currently degraded (clears on next success)
	degradedN atomic.Int64 // lifetime degraded answers

	// removed tombstones a device whose state left this node: set by
	// ExportRemove while the semaphore is held, checked by the decide
	// path after acquiring it. A decide that resolved the device
	// before it was unpublished must not commit to the orphaned
	// object — its decision could never appear in the already-pushed
	// handoff bundle, breaking exactly-once on the importing node.
	removed atomic.Bool
}

// acquire takes the device semaphore, giving up when ctx expires.
func (d *device) acquire(ctx context.Context) error {
	select {
	case d.sem <- struct{}{}:
		return nil
	default:
	}
	select {
	case d.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (d *device) release() { <-d.sem }

// shard is one lock domain of the registry. Its journal is the
// decision flight recorder for the shard's devices; appends and reads
// are lock-free, so journaling never contends with the shard mutex.
type shard struct {
	mu      sync.RWMutex
	devices map[string]*device
	journal *obs.Journal
}

// Registry is the sharded, concurrency-safe set of per-device
// managers. All methods are safe for concurrent use.
type Registry struct {
	dbs    map[string]*dbState
	names  []string // registration order, for stable listings
	shards []*shard

	// hook, when non-nil, fault-checks the decision path (see
	// DecideHook). Set via SetDecideHook before serving traffic.
	hook DecideHook

	// clock times decisions and journal entries; injected so tests can
	// pin timestamps (nil in NewRegistry selects obs.NowClock).
	clock obs.Clock

	met *metrics.Registry
	// Fleet-wide instruments (per-endpoint HTTP counters live in the
	// server, which shares met).
	decisions   *metrics.Counter
	reconfigs   *metrics.Counter
	violations  *metrics.Counter
	regTotal    *metrics.Counter
	replays     *metrics.Counter
	degradedTot *metrics.Counter
	timeouts    *metrics.Counter
	explained   *metrics.Counter
	devices     *metrics.Gauge
	degradedDev *metrics.Gauge
	decisionLat *metrics.Histogram
	stageLat    map[string]*metrics.Histogram

	// Continuous-ReD instruments (see evolve.go).
	evolveProposals     *metrics.Counter
	evolveCutovers      *metrics.Counter
	evolveAdoptions     *metrics.Counter
	evolveRollbacks     *metrics.Counter
	evolveDropped       *metrics.Counter
	evolveShadowEvents  *metrics.Counter
	evolveShadowAgree   *metrics.Counter
	evolveShadowDiverge *metrics.Counter

	// Cohort-learning instruments (see cohort.go).
	cohortPublishes *metrics.Counter
	cohortAdoptions *metrics.Counter
	cohortRollbacks *metrics.Counter
	cohortPriors    *metrics.Counter
}

// NewRegistry validates every database (see dse.Database.Validate)
// and builds an empty registry with the given shard count (0 selects
// DefaultShards).
func NewRegistry(dbs []NamedDatabase, shards int) (*Registry, error) {
	if len(dbs) == 0 {
		return nil, fmt.Errorf("fleet: at least one database is required")
	}
	if shards <= 0 {
		shards = DefaultShards
	}
	r := &Registry{
		dbs:    make(map[string]*dbState, len(dbs)),
		shards: make([]*shard, shards),
		met:    metrics.NewRegistry(),
	}
	for i := range dbs {
		db := dbs[i]
		if db.Name == "" {
			return nil, fmt.Errorf("fleet: database %d has no name", i)
		}
		if _, dup := r.dbs[db.Name]; dup {
			return nil, fmt.Errorf("fleet: duplicate database name %q", db.Name)
		}
		if db.DB == nil || db.Space == nil {
			return nil, fmt.Errorf("fleet: database %q: nil database or space", db.Name)
		}
		if err := db.DB.Validate(db.Space); err != nil {
			return nil, fmt.Errorf("fleet: database %q: %w", db.Name, err)
		}
		db.build()
		st := &dbState{
			name: db.Name,
			activeVer: r.met.Gauge("clr_evolve_active_version",
				"Database version currently served, per cohort.", "db", db.Name),
			candVer: r.met.Gauge("clr_evolve_candidate_version",
				"Candidate database version being shadow-served, per cohort (0 when none).", "db", db.Name),
			vtVer: r.met.Gauge("clr_cohort_table_version",
				"Cohort value-table version currently active, per cohort (0 when none published).", "db", db.Name),
		}
		st.active.Store(&db)
		st.activeVer.Set(int64(db.DB.Version))
		r.dbs[db.Name] = st
		r.names = append(r.names, db.Name)
	}
	r.clock = obs.NowClock
	for i := range r.shards {
		r.shards[i] = &shard{
			devices: make(map[string]*device),
			journal: obs.NewJournal(obs.DefaultJournalCap),
		}
	}
	r.decisions = r.met.Counter("clr_fleet_decisions_total",
		"QoS-change decisions served.")
	r.reconfigs = r.met.Counter("clr_fleet_reconfigurations_total",
		"Decisions that moved a device to a different stored point.")
	r.violations = r.met.Counter("clr_fleet_violations_total",
		"Decisions whose specification no stored point satisfied.")
	r.regTotal = r.met.Counter("clr_fleet_registrations_total",
		"Device registrations accepted.")
	r.replays = r.met.Counter("clr_fleet_replays_total",
		"Retried QoS events answered from the per-device decision cache.")
	r.degradedTot = r.met.Counter("clr_fleet_degraded_decisions_total",
		"QoS events answered with the last known-good fallback.")
	r.timeouts = r.met.Counter("clr_fleet_decision_timeouts_total",
		"Decisions abandoned because the deadline expired.")
	r.devices = r.met.Gauge("clr_fleet_devices",
		"Devices currently registered.")
	r.degradedDev = r.met.Gauge("clr_fleet_degraded_devices",
		"Devices currently in degraded mode.")
	r.decisionLat = r.met.Histogram("clr_fleet_decision_latency_seconds",
		"Wall-clock latency of the decision hot path.", nil)
	r.explained = r.met.Counter("clr_decisions_explained_total",
		"Decisions recorded in the per-shard decision journal (degraded answers included, replays excluded).")
	r.stageLat = make(map[string]*metrics.Histogram, 4)
	for _, st := range obs.Stages() {
		r.stageLat[st] = r.met.Histogram("clr_decision_stage_seconds",
			"Wall-clock latency of one decide-path stage (filter, score, switch, agent_update).",
			metrics.StageLatencyBuckets(), "stage", st)
	}
	r.evolveProposals = r.met.Counter("clr_evolve_proposals_total",
		"Candidate databases installed for shadow serving.")
	r.evolveCutovers = r.met.Counter("clr_evolve_cutovers_total",
		"Candidate databases promoted to active.")
	r.evolveAdoptions = r.met.Counter("clr_evolve_adoptions_total",
		"Active databases adopted from a cluster peer to catch up after a remote cutover.")
	r.evolveRollbacks = r.met.Counter("clr_evolve_rollbacks_total",
		"Cutovers reverted to the previous database version.")
	r.evolveDropped = r.met.Counter("clr_evolve_candidates_dropped_total",
		"Candidate databases withdrawn without a cutover.")
	r.evolveShadowEvents = r.met.Counter("clr_evolve_shadow_events_total",
		"Decisions additionally scored against a candidate database.")
	r.evolveShadowAgree = r.met.Counter("clr_evolve_shadow_agreements_total",
		"Shadow decisions that chose the active decision's configuration.")
	r.evolveShadowDiverge = r.met.Counter("clr_evolve_shadow_divergences_total",
		"Shadow decisions that chose a different configuration than the active database.")
	r.cohortPublishes = r.met.Counter("clr_cohort_publishes_total",
		"Cohort value tables published for serving.")
	r.cohortAdoptions = r.met.Counter("clr_cohort_adoptions_total",
		"Cohort value tables adopted from a cluster peer to catch up after a remote publish.")
	r.cohortRollbacks = r.met.Counter("clr_cohort_rollbacks_total",
		"Cohort value-table publishes reverted to the previous version.")
	r.cohortPriors = r.met.Counter("clr_cohort_priors_applied_total",
		"Device agents seeded from a cohort value table (cold-start inheritance and live re-seeds).")
	return r, nil
}

// SetJournalCap resizes every shard's decision journal to hold cap
// entries (<= 0 selects obs.DefaultJournalCap). Like SetDecideHook it
// must be called before the registry serves traffic: resizing
// discards the journals' contents.
func (r *Registry) SetJournalCap(cap int) {
	for _, sh := range r.shards {
		sh.journal = obs.NewJournal(cap)
	}
}

// SetDecideHook installs the decision-path fault hook. It must be set
// before the registry serves traffic (it is read without a lock).
func (r *Registry) SetDecideHook(h DecideHook) { r.hook = h }

// DegradedDevices returns how many devices are currently degraded.
func (r *Registry) DegradedDevices() int64 { return r.degradedDev.Value() }

// Metrics returns the registry's metrics set (shared with the server).
func (r *Registry) Metrics() *metrics.Registry { return r.met }

// DecisionCount returns the number of decisions served so far.
func (r *Registry) DecisionCount() uint64 { return r.decisions.Value() }

// shardFor hashes a device ID onto its shard.
func (r *Registry) shardFor(id string) *shard {
	h := fnv.New32a()
	h.Write([]byte(id))
	return r.shards[h.Sum32()%uint32(len(r.shards))]
}

// Databases lists the registered databases in registration order, each
// at its currently active version.
func (r *Registry) Databases() []NamedDatabase {
	out := make([]NamedDatabase, 0, len(r.names))
	for _, name := range r.names {
		out = append(out, *r.dbs[name].active.Load())
	}
	return out
}

// Register boots a manager for the device into the best feasible
// stored point for its initial specification and adds it to the
// fleet. It fails with ErrDeviceExists on duplicate IDs and
// ErrNoDatabase on unknown database names.
func (r *Registry) Register(p DeviceParams) (*DeviceInfo, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	st, ok := r.dbs[p.Database]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoDatabase, p.Database)
	}
	db := st.active.Load()
	// Build the manager outside the shard lock: boot scans the whole
	// database, and nothing below can fail.
	mgr, err := newManagerOn(db, p, p.Initial)
	if err != nil {
		return nil, err
	}
	d := &device{
		sem: make(chan struct{}, 1),
		id:  p.ID, dbName: p.Database, state: st, params: p, regAt: time.Now(),
		plabels: pprof.Labels("device", p.ID, "stage", "decide"),
	}
	d.db.Store(db)
	d.mgr.Store(mgr)
	// Cold-start cohort inheritance: a device joining a cohort that
	// already published a value table inherits the cohort's learned
	// values in place of the analytic stay-put prior — what its
	// cohort-mates know beats what offline Monte-Carlo would guess.
	// Failure to apply (uRA device, gamma mismatch, table bound to
	// other database content) just boots the device without a prior.
	if vt := st.vtActive.Load(); vt != nil && vt.DBFingerprint == db.fp {
		if applied, err := mgr.ApplyValuePrior(vt); err == nil && applied {
			d.vtMgr, d.vtApplied = mgr, vt
			d.vtVersion.Store(vt.Version)
			r.cohortPriors.Inc()
		}
	}

	sh := r.shardFor(p.ID)
	sh.mu.Lock()
	if _, dup := sh.devices[p.ID]; dup {
		sh.mu.Unlock()
		return nil, fmt.Errorf("%w: %q", ErrDeviceExists, p.ID)
	}
	sh.devices[p.ID] = d
	sh.mu.Unlock()

	r.regTotal.Inc()
	r.devices.Add(1)
	return d.snapshot(), nil
}

// Has reports whether the device is currently registered on this
// node. The cluster router uses it while draining: a device not yet
// handed off keeps being served locally even though the drain ring
// already assigns it elsewhere.
func (r *Registry) Has(id string) bool {
	sh := r.shardFor(id)
	sh.mu.RLock()
	_, ok := sh.devices[id]
	sh.mu.RUnlock()
	return ok
}

// lookup fetches a device under the shard read lock.
func (r *Registry) lookup(id string) (*device, error) {
	sh := r.shardFor(id)
	sh.mu.RLock()
	d, ok := sh.devices[id]
	sh.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoDevice, id)
	}
	return d, nil
}

// DecideOutcome is a decision plus how it was produced.
type DecideOutcome struct {
	// Decision is the answer (for Degraded outcomes: stay at the last
	// known-good configuration).
	Decision runtime.Decision
	// Replayed reports that the event's sequence number was already
	// decided and the cached decision was returned unchanged.
	Replayed bool
	// Degraded reports that the decision path faulted or missed its
	// deadline and the device fell back to last known-good.
	Degraded bool
}

// Decide reacts to one QoS change for the device and returns the
// decision with its imperative reconfiguration plan. Decisions for
// one device execute one at a time; decisions for distinct devices
// run fully in parallel.
func (r *Registry) Decide(id string, spec runtime.QoSSpec) (runtime.Decision, error) {
	out, err := r.DecideCtx(context.Background(), id, 0, spec)
	return out.Decision, err
}

// DecideCtx is Decide with delivery semantics and fault tolerance.
//
// seq, when positive, is the device's monotonically increasing event
// sequence number: an event equal to the last decided sequence is a
// retry and is answered from the replay cache without re-deciding
// (so at-least-once delivery yields exactly-once decisions), while an
// event behind it fails with ErrStaleSeq. seq 0 bypasses the cache.
//
// If the decision path faults (see SetDecideHook) or ctx expires
// before the device's lock is available, the device degrades: the
// outcome is a stay-put decision at the last known-good configuration,
// flagged Degraded, and the manager state is untouched — a later retry
// of the same sequence number re-decides for real.
func (r *Registry) DecideCtx(ctx context.Context, id string, seq uint64, spec runtime.QoSSpec) (DecideOutcome, error) {
	d, err := r.lookup(id)
	if err != nil {
		return DecideOutcome{}, err
	}
	return r.decideOn(ctx, d, seq, spec)
}

// decideOn is DecideCtx after device resolution. It re-checks the
// removal tombstone once the semaphore is held: a device exported off
// this node between lookup and acquire fails with ErrNoDevice — the
// caller re-resolves ownership — instead of committing a decision the
// already-pushed handoff bundle can never contain.
func (r *Registry) decideOn(ctx context.Context, d *device, seq uint64, spec runtime.QoSSpec) (DecideOutcome, error) {
	// The trace ID rides the context from the edge (HTTP middleware or
	// client call root); the registry never mints one mid-stack.
	tr := obs.NewTrace(obs.TraceIDFrom(ctx), r.clock)
	start := time.Now()
	if err := d.acquire(ctx); err != nil {
		if d.removed.Load() {
			return DecideOutcome{}, fmt.Errorf("%w: %q", ErrNoDevice, d.id)
		}
		// The device's decision path is wedged past our deadline:
		// answer degraded without touching any state.
		return r.degrade(d, seq, spec, tr, err), nil
	}
	if d.removed.Load() {
		d.release()
		return DecideOutcome{}, fmt.Errorf("%w: %q", ErrNoDevice, d.id)
	}
	out, err := r.decideLocked(ctx, d, seq, spec, tr)
	d.release()
	if err == nil && !out.Replayed && !out.Degraded {
		r.decisionLat.Observe(time.Since(start).Seconds())
	}
	return out, err
}

// decideLocked is the decision core shared by the single-event path
// (decideOn) and the batch path (decideRun). The caller holds the
// device semaphore — and has already ruled out the removal tombstone,
// which cannot flip while the semaphore is held (ExportRemove sets it
// under the same semaphore) — so one acquisition can serve a whole run
// of events for the device. It never releases the semaphore.
func (r *Registry) decideLocked(ctx context.Context, d *device, seq uint64, spec runtime.QoSSpec, tr *obs.Trace) (DecideOutcome, error) {
	if seq > 0 && d.haveLast {
		if seq == d.lastSeq {
			d.stats.Replays++
			r.replays.Inc()
			return DecideOutcome{Decision: d.lastDec, Replayed: true}, nil
		}
		if seq < d.lastSeq {
			return DecideOutcome{}, fmt.Errorf("%w: seq %d behind %d", ErrStaleSeq, seq, d.lastSeq)
		}
	}
	if r.hook != nil {
		if err := r.hook(ctx, d.id, seq); err != nil {
			return r.degrade(d, seq, spec, tr, err), nil
		}
	}
	// Converge onto the cohort's current active/candidate versions and
	// value table before deciding — the swaps happen here, between
	// decisions, under the semaphore the caller holds.
	r.syncVersion(d)
	r.syncValueTable(d)
	var dec runtime.Decision
	var detail runtime.DecisionDetail
	// pprof labels attribute CPU samples under the decide path to the
	// device and stage, so a fleet-wide profile decomposes per device.
	pprof.Do(ctx, d.plabels, func(context.Context) {
		dec, detail = d.mgr.Load().OnQoSChangeObserved(spec, tr)
	})
	d.stats.Decisions++
	d.lastSpec, d.haveSpec = spec, true
	if dec.Reconfigured {
		d.stats.Reconfigs++
		d.stats.TotalDRCMs += dec.Cost.Total()
		d.stats.Migrations += int64(dec.Cost.MigratedTasks)
	}
	if dec.Violated {
		d.stats.Violations++
	}
	if seq > 0 {
		d.lastSeq, d.lastDec, d.haveLast = seq, dec, true
	}
	// Journal before the semaphore is released: a handoff export
	// acquires the semaphore to snapshot, and must see the replay cache
	// and the journal entry of the same decision together (the append
	// itself is lock-free, so the hold grows by well under a
	// microsecond).
	r.journal(d, seq, spec, tr, dec, detail, false)
	// Dual-serve the event against the candidate version, if one is
	// installed. After the journal append: the shadow never influences
	// the served decision or the flight record.
	r.shadowScore(d, seq, spec, dec)
	// Clear the degraded flag while the semaphore is still held, so a
	// concurrent export's DegradedNow snapshot and this gauge move
	// together (ExportRemove decrements from its snapshot).
	if d.degraded.CompareAndSwap(true, false) {
		r.degradedDev.Add(-1)
	}
	r.decisions.Inc()
	if dec.Reconfigured {
		r.reconfigs.Inc()
	}
	if dec.Violated {
		r.violations.Inc()
	}
	return DecideOutcome{Decision: dec}, nil
}

// degrade builds the last-known-good fallback outcome for a decision
// path that faulted with err, and accounts for it. It must not assume
// the device semaphore is held.
func (r *Registry) degrade(d *device, seq uint64, spec runtime.QoSSpec, tr *obs.Trace, err error) DecideOutcome {
	cur := d.mgr.Load().Current()
	d.degradedN.Add(1)
	if d.degraded.CompareAndSwap(false, true) {
		r.degradedDev.Add(1)
	}
	r.degradedTot.Inc()
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		r.timeouts.Inc()
	}
	dec := runtime.Decision{From: cur, To: cur}
	r.journal(d, seq, spec, tr, dec, runtime.DecisionDetail{}, true)
	return DecideOutcome{
		Decision: dec,
		Degraded: true,
	}
}

// journal explains one decision into the device's shard journal and
// feeds the stage histograms. Replays are not journaled — the journal
// explains decisions, and a replay repeats one — so for any (device,
// seq) exactly one non-degraded entry exists, plus one degraded entry
// per faulted attempt.
func (r *Registry) journal(d *device, seq uint64, spec runtime.QoSSpec, tr *obs.Trace, dec runtime.Decision, detail runtime.DecisionDetail, degraded bool) {
	e := &obs.Entry{
		TraceID:      tr.ID(),
		Device:       d.id,
		Seq:          seq,
		UnixNanos:    r.clock().UnixNano(),
		From:         dec.From,
		To:           dec.To,
		Reconfigured: dec.Reconfigured,
		Violated:     dec.Violated,
		Degraded:     degraded,
		Candidates:   detail.Candidates,
		Infeasible:   detail.Infeasible,
		Score:        detail.Score,
		DRCMs:        dec.Cost.Total(),
		DBVersion:    d.db.Load().DB.Version,
		VTVersion:    d.vtVersion.Load(),
		SpecSMaxMs:   spec.SMaxMs,
		SpecFMin:     spec.FMin,
		Stages:       append([]obs.Span(nil), tr.Spans()...),
	}
	r.shardFor(d.id).journal.Append(e)
	for _, s := range e.Stages {
		if h, ok := r.stageLat[s.Name]; ok {
			h.Observe(s.Seconds)
		}
	}
	r.explained.Inc()
}

// Decisions snapshots the journaled decisions across every shard,
// oldest first, optionally filtered to one device. limit > 0 keeps
// only the newest limit entries after filtering. The snapshot is
// lock-free and safe under live traffic.
func (r *Registry) Decisions(device string, limit int) []obs.Entry {
	var out []obs.Entry
	if device != "" {
		out = r.shardFor(device).journal.Snapshot()
		kept := out[:0]
		for _, e := range out {
			if e.Device == device {
				kept = append(kept, e)
			}
		}
		out = kept
	} else {
		for _, sh := range r.shards {
			out = append(out, sh.journal.Snapshot()...)
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].UnixNanos != out[j].UnixNanos {
			return out[i].UnixNanos < out[j].UnixNanos
		}
		if out[i].Device != out[j].Device {
			return out[i].Device < out[j].Device
		}
		return out[i].Seq < out[j].Seq
	})
	if limit > 0 && len(out) > limit {
		out = out[len(out)-limit:]
	}
	return out
}

// DecisionsForDatabase snapshots the journaled decisions of the
// devices currently registered against the named database cohort,
// oldest first — the observation stream the Continuous-ReD worker
// folds into its empirical event distribution. Entries of devices that
// have since deregistered or moved off this node are not included.
func (r *Registry) DecisionsForDatabase(name string, limit int) []obs.Entry {
	member := make(map[string]bool)
	for _, sh := range r.shards {
		sh.mu.RLock()
		for id, d := range sh.devices {
			if d.dbName == name {
				member[id] = true
			}
		}
		sh.mu.RUnlock()
	}
	out := r.Decisions("", 0)
	kept := out[:0]
	for _, e := range out {
		if member[e.Device] {
			kept = append(kept, e)
		}
	}
	out = kept
	if limit > 0 && len(out) > limit {
		out = out[len(out)-limit:]
	}
	return out
}

// Get returns a snapshot of the device's current point and cumulative
// stats.
func (r *Registry) Get(id string) (*DeviceInfo, error) {
	d, err := r.lookup(id)
	if err != nil {
		return nil, err
	}
	return d.snapshot(), nil
}

// Remove deregisters the device.
func (r *Registry) Remove(id string) error {
	sh := r.shardFor(id)
	sh.mu.Lock()
	d, ok := sh.devices[id]
	if ok {
		delete(sh.devices, id)
	}
	sh.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoDevice, id)
	}
	r.devices.Add(-1)
	if d.degraded.Load() {
		r.degradedDev.Add(-1)
	}
	return nil
}

// Len returns the number of registered devices.
func (r *Registry) Len() int {
	n := 0
	for _, sh := range r.shards {
		sh.mu.RLock()
		n += len(sh.devices)
		sh.mu.RUnlock()
	}
	return n
}

func (d *device) snapshot() *DeviceInfo {
	d.sem <- struct{}{}
	stats := d.stats
	d.release()
	stats.Degraded = d.degradedN.Load()
	pt := d.mgr.Load().CurrentPoint()
	return &DeviceInfo{
		ID:           d.id,
		Database:     d.dbName,
		Point:        pt.ID,
		MakespanMs:   pt.MakespanMs,
		Reliability:  pt.Reliability,
		EnergyMJ:     pt.EnergyMJ,
		Stats:        stats,
		RegisteredAt: d.regAt,
	}
}
