// Package fleet is the network-facing run-time layer at scale: where
// runtime.Manager embeds the paper's uRA/AuRA decision logic in one
// device's control loop, fleet hosts many such managers concurrently
// behind an HTTP/JSON API, in the spirit of the design-time/run-time
// split where a central entity serves precomputed operating points to
// a whole fleet of deployed systems.
//
// The core is a sharded, concurrency-safe device registry: device IDs
// hash onto a fixed set of shards, each guarded by its own RWMutex, so
// registrations and decisions for unrelated devices never contend on a
// single lock. Decisions for one device serialise on that device's own
// mutex, preserving the Manager's sequential semantics — the decision
// sequence for a device is byte-identical to feeding the same QoS
// events to a single in-process Manager.
package fleet

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"sync"
	"time"

	"clrdse/internal/dse"
	"clrdse/internal/fleet/metrics"
	"clrdse/internal/mapping"
	"clrdse/internal/runtime"
)

// Registry errors, distinguished so the HTTP layer can map them to
// status codes.
var (
	// ErrDeviceExists reports a duplicate registration.
	ErrDeviceExists = errors.New("fleet: device already registered")
	// ErrNoDevice reports an unknown device ID.
	ErrNoDevice = errors.New("fleet: no such device")
	// ErrNoDatabase reports an unknown database name.
	ErrNoDatabase = errors.New("fleet: no such database")
)

// NamedDatabase couples a pruned design-point database with the
// mapping space it was built for, under the name devices register
// against.
type NamedDatabase struct {
	// Name is the registration key ("red", "based", ...).
	Name string
	// DB is the stored design-point database.
	DB *dse.Database
	// Space prices reconfigurations between the stored points.
	Space *mapping.Space

	// matrix is the precomputed pairwise dRC table over DB, built once
	// at registry construction and shared read-only by every device on
	// this database — registering a device costs O(|DB|) instead of the
	// O(|DB|^2) dRC computations a private table would need.
	matrix *mapping.DRCMatrix
}

// Envelope returns the database's QoS metric ranges — the satisfiable
// region load generators and registrants should draw specs from.
func (n NamedDatabase) Envelope() (minS, maxS, minF, maxF float64) {
	minS, maxS = math.Inf(1), math.Inf(-1)
	minF, maxF = math.Inf(1), math.Inf(-1)
	for _, p := range n.DB.Points {
		minS = math.Min(minS, p.MakespanMs)
		maxS = math.Max(maxS, p.MakespanMs)
		minF = math.Min(minF, p.Reliability)
		maxF = math.Max(maxF, p.Reliability)
	}
	return minS, maxS, minF, maxF
}

// DefaultShards is the registry's default shard count. 32 keeps lock
// contention negligible up to a few hundred concurrent requesters
// while wasting no measurable memory for small fleets.
const DefaultShards = 32

// DeviceParams registers one device.
type DeviceParams struct {
	// ID names the device; it must be non-empty and URL-path-safe.
	ID string
	// Database selects the NamedDatabase to decide against.
	Database string
	// PRC is the device's pRC knob in [0,1].
	PRC float64
	// Trigger selects when the device's manager re-optimises.
	Trigger runtime.Trigger
	// Policy selects the scoring rule.
	Policy runtime.Policy
	// Gamma, when positive, upgrades the device's uRA to AuRA with
	// this discount factor (stay-put prior value functions).
	Gamma float64
	// MeanInterArrivalCycles calibrates the agent's episode clock
	// (0 selects the paper's 100).
	MeanInterArrivalCycles float64
	// Initial is the device's boot QoS specification.
	Initial runtime.QoSSpec
}

func (p *DeviceParams) validate() error {
	if p.ID == "" {
		return fmt.Errorf("fleet: empty device ID")
	}
	for _, c := range p.ID {
		if c == '/' || c == '%' || c == ' ' {
			return fmt.Errorf("fleet: device ID %q contains %q; IDs must be URL-path-safe", p.ID, c)
		}
	}
	if p.PRC < 0 || p.PRC > 1 {
		return fmt.Errorf("fleet: pRC must be in [0,1], got %v", p.PRC)
	}
	if p.Gamma < 0 || p.Gamma >= 1 {
		return fmt.Errorf("fleet: gamma must be in [0,1), got %v", p.Gamma)
	}
	return nil
}

// DeviceStats accumulates one device's decision history.
type DeviceStats struct {
	// Decisions counts QoS events processed.
	Decisions int64
	// Reconfigs counts decisions that moved the configuration.
	Reconfigs int64
	// Violations counts events whose spec no stored point satisfied.
	Violations int64
	// TotalDRCMs is the accumulated reconfiguration cost.
	TotalDRCMs float64
	// Migrations counts migrated task binaries.
	Migrations int64
}

// DeviceInfo is a point-in-time snapshot of one registered device.
type DeviceInfo struct {
	// ID and Database identify the device and its decision basis.
	ID, Database string
	// Point is the stored design-point ID in force.
	Point int
	// MakespanMs, Reliability, EnergyMJ are the point's metrics.
	MakespanMs, Reliability, EnergyMJ float64
	// Stats is the cumulative decision history.
	Stats DeviceStats
	// RegisteredAt is the registration instant.
	RegisteredAt time.Time
}

// device is one registered device; mu serialises decisions so the
// manager's sequential semantics and the stats stay consistent.
type device struct {
	mu     sync.Mutex
	id     string
	dbName string
	db     *NamedDatabase
	mgr    *runtime.Manager
	stats  DeviceStats
	regAt  time.Time
}

// shard is one lock domain of the registry.
type shard struct {
	mu      sync.RWMutex
	devices map[string]*device
}

// Registry is the sharded, concurrency-safe set of per-device
// managers. All methods are safe for concurrent use.
type Registry struct {
	dbs    map[string]*NamedDatabase
	names  []string // registration order, for stable listings
	shards []*shard

	met *metrics.Registry
	// Fleet-wide instruments (per-endpoint HTTP counters live in the
	// server, which shares met).
	decisions   *metrics.Counter
	reconfigs   *metrics.Counter
	violations  *metrics.Counter
	regTotal    *metrics.Counter
	devices     *metrics.Gauge
	decisionLat *metrics.Histogram
}

// NewRegistry validates every database (see dse.Database.Validate)
// and builds an empty registry with the given shard count (0 selects
// DefaultShards).
func NewRegistry(dbs []NamedDatabase, shards int) (*Registry, error) {
	if len(dbs) == 0 {
		return nil, fmt.Errorf("fleet: at least one database is required")
	}
	if shards <= 0 {
		shards = DefaultShards
	}
	r := &Registry{
		dbs:    make(map[string]*NamedDatabase, len(dbs)),
		shards: make([]*shard, shards),
		met:    metrics.NewRegistry(),
	}
	for i := range dbs {
		db := dbs[i]
		if db.Name == "" {
			return nil, fmt.Errorf("fleet: database %d has no name", i)
		}
		if _, dup := r.dbs[db.Name]; dup {
			return nil, fmt.Errorf("fleet: duplicate database name %q", db.Name)
		}
		if db.DB == nil || db.Space == nil {
			return nil, fmt.Errorf("fleet: database %q: nil database or space", db.Name)
		}
		if err := db.DB.Validate(db.Space); err != nil {
			return nil, fmt.Errorf("fleet: database %q: %w", db.Name, err)
		}
		db.matrix = mapping.NewDRCMatrix(db.Space, db.DB.Mappings())
		r.dbs[db.Name] = &db
		r.names = append(r.names, db.Name)
	}
	for i := range r.shards {
		r.shards[i] = &shard{devices: make(map[string]*device)}
	}
	r.decisions = r.met.Counter("fleet_decisions_total",
		"QoS-change decisions served.")
	r.reconfigs = r.met.Counter("fleet_reconfigurations_total",
		"Decisions that moved a device to a different stored point.")
	r.violations = r.met.Counter("fleet_violations_total",
		"Decisions whose specification no stored point satisfied.")
	r.regTotal = r.met.Counter("fleet_registrations_total",
		"Device registrations accepted.")
	r.devices = r.met.Gauge("fleet_devices",
		"Devices currently registered.")
	r.decisionLat = r.met.Histogram("fleet_decision_latency_seconds",
		"Wall-clock latency of the decision hot path.", nil)
	return r, nil
}

// Metrics returns the registry's metrics set (shared with the server).
func (r *Registry) Metrics() *metrics.Registry { return r.met }

// DecisionCount returns the number of decisions served so far.
func (r *Registry) DecisionCount() uint64 { return r.decisions.Value() }

// shardFor hashes a device ID onto its shard.
func (r *Registry) shardFor(id string) *shard {
	h := fnv.New32a()
	h.Write([]byte(id))
	return r.shards[h.Sum32()%uint32(len(r.shards))]
}

// Databases lists the registered databases in registration order.
func (r *Registry) Databases() []NamedDatabase {
	out := make([]NamedDatabase, 0, len(r.names))
	for _, name := range r.names {
		out = append(out, *r.dbs[name])
	}
	return out
}

// Register boots a manager for the device into the best feasible
// stored point for its initial specification and adds it to the
// fleet. It fails with ErrDeviceExists on duplicate IDs and
// ErrNoDatabase on unknown database names.
func (r *Registry) Register(p DeviceParams) (*DeviceInfo, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	db, ok := r.dbs[p.Database]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoDatabase, p.Database)
	}
	mp := runtime.ManagerParams{
		DB:                     db.DB,
		Space:                  db.Space,
		Matrix:                 db.matrix,
		PRC:                    p.PRC,
		Trigger:                p.Trigger,
		Policy:                 p.Policy,
		MeanInterArrivalCycles: p.MeanInterArrivalCycles,
	}
	if p.Gamma > 0 {
		mp.Agent = runtime.NewAgentForDB(db.DB, p.Gamma, 0)
	}
	// Build the manager outside the shard lock: boot scans the whole
	// database, and nothing below can fail.
	mgr, err := runtime.NewManager(mp, p.Initial)
	if err != nil {
		return nil, err
	}
	d := &device{id: p.ID, dbName: p.Database, db: db, mgr: mgr, regAt: time.Now()}

	sh := r.shardFor(p.ID)
	sh.mu.Lock()
	if _, dup := sh.devices[p.ID]; dup {
		sh.mu.Unlock()
		return nil, fmt.Errorf("%w: %q", ErrDeviceExists, p.ID)
	}
	sh.devices[p.ID] = d
	sh.mu.Unlock()

	r.regTotal.Inc()
	r.devices.Add(1)
	return d.snapshot(), nil
}

// lookup fetches a device under the shard read lock.
func (r *Registry) lookup(id string) (*device, error) {
	sh := r.shardFor(id)
	sh.mu.RLock()
	d, ok := sh.devices[id]
	sh.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoDevice, id)
	}
	return d, nil
}

// Decide reacts to one QoS change for the device and returns the
// decision with its imperative reconfiguration plan. Decisions for
// one device execute one at a time; decisions for distinct devices
// run fully in parallel.
func (r *Registry) Decide(id string, spec runtime.QoSSpec) (runtime.Decision, error) {
	d, err := r.lookup(id)
	if err != nil {
		return runtime.Decision{}, err
	}
	start := time.Now()
	d.mu.Lock()
	dec := d.mgr.OnQoSChange(spec)
	d.stats.Decisions++
	if dec.Reconfigured {
		d.stats.Reconfigs++
		d.stats.TotalDRCMs += dec.Cost.Total()
		d.stats.Migrations += int64(dec.Cost.MigratedTasks)
	}
	if dec.Violated {
		d.stats.Violations++
	}
	d.mu.Unlock()
	r.decisionLat.Observe(time.Since(start).Seconds())
	r.decisions.Inc()
	if dec.Reconfigured {
		r.reconfigs.Inc()
	}
	if dec.Violated {
		r.violations.Inc()
	}
	return dec, nil
}

// Get returns a snapshot of the device's current point and cumulative
// stats.
func (r *Registry) Get(id string) (*DeviceInfo, error) {
	d, err := r.lookup(id)
	if err != nil {
		return nil, err
	}
	return d.snapshot(), nil
}

// Remove deregisters the device.
func (r *Registry) Remove(id string) error {
	sh := r.shardFor(id)
	sh.mu.Lock()
	_, ok := sh.devices[id]
	if ok {
		delete(sh.devices, id)
	}
	sh.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoDevice, id)
	}
	r.devices.Add(-1)
	return nil
}

// Len returns the number of registered devices.
func (r *Registry) Len() int {
	n := 0
	for _, sh := range r.shards {
		sh.mu.RLock()
		n += len(sh.devices)
		sh.mu.RUnlock()
	}
	return n
}

func (d *device) snapshot() *DeviceInfo {
	d.mu.Lock()
	defer d.mu.Unlock()
	pt := d.mgr.CurrentPoint()
	return &DeviceInfo{
		ID:           d.id,
		Database:     d.dbName,
		Point:        pt.ID,
		MakespanMs:   pt.MakespanMs,
		Reliability:  pt.Reliability,
		EnergyMJ:     pt.EnergyMJ,
		Stats:        d.stats,
		RegisteredAt: d.regAt,
	}
}
