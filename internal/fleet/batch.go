package fleet

// Batched decisions: many QoS events — multiple devices, multiple
// events per device — scored in one registry call. The point is to
// amortise the per-request costs of the served path (HTTP round trip,
// codec, handler allocations) over a run of events: per-device
// ordering is preserved (events for one device decide in their batch
// order under a single semaphore acquisition), the exactly-once replay
// cache applies per event exactly as on the single-event path, and a
// failed event (unknown device, stale sequence, degraded answer)
// never poisons its neighbours — every slot carries its own outcome.

import (
	"context"
	"fmt"
	"sync"
	"time"

	"clrdse/internal/obs"
	"clrdse/internal/runtime"
)

// BatchEvent is one QoS event inside a batch, addressed to a device.
type BatchEvent struct {
	// Device is the registered device ID.
	Device string
	// Seq is the device's event sequence number (0 bypasses the
	// exactly-once replay cache, as on the single-event path).
	Seq uint64
	// Spec is the new QoS requirement.
	Spec runtime.QoSSpec
}

// BatchOutcome is one event's result: either an outcome (possibly
// replayed or degraded) or an error (unknown device, stale sequence).
type BatchOutcome struct {
	Out DecideOutcome
	Err error
}

// batchRun is one device's run of events inside a batch: indices into
// the events slice, in arrival order.
type batchRun struct {
	device string
	idx    []int
}

// batchPlan is pooled scratch for DecideBatch's grouping pass.
type batchPlan struct {
	runs    []batchRun
	byDev   map[string]int   // device -> index into runs
	byShard map[*shard][]int // shard -> indices into runs
	shards  []*shard         // first-appearance shard order
	idxPool [][]int          // recycled index slices
}

var batchPlanPool = sync.Pool{New: func() any {
	return &batchPlan{
		byDev:   make(map[string]int),
		byShard: make(map[*shard][]int),
	}
}}

func (p *batchPlan) reset() {
	for i := range p.runs {
		p.idxPool = append(p.idxPool, p.runs[i].idx[:0])
	}
	p.runs = p.runs[:0]
	clear(p.byDev)
	for _, sh := range p.shards {
		p.idxPool = append(p.idxPool, p.byShard[sh][:0])
	}
	// The keys must go too, not just the values: planning treats "key
	// present" as "shard already in p.shards", so a key surviving from
	// the previous batch would silently drop this batch's runs for
	// that shard (they would be appended to a slice nobody executes).
	clear(p.byShard)
	p.shards = p.shards[:0]
}

func (p *batchPlan) newIdx() []int {
	if n := len(p.idxPool); n > 0 {
		s := p.idxPool[n-1]
		p.idxPool = p.idxPool[:n-1]
		return s
	}
	return nil
}

// DecideBatch reacts to a batch of QoS events, writing one outcome per
// event into results (len(results) must equal len(events); slots whose
// Err is already non-nil are skipped — the HTTP layer pre-fills them
// for events that failed wire validation). Events for one device are
// decided in batch order under a single semaphore acquisition, so the
// per-device decision sequence is byte-identical to feeding the same
// events one at a time. Distinct shards fan out concurrently — one
// goroutine per shard touched, never one per event.
func (r *Registry) DecideBatch(ctx context.Context, events []BatchEvent, results []BatchOutcome) {
	if len(events) == 0 {
		return
	}
	if len(results) != len(events) {
		panic(fmt.Sprintf("fleet: DecideBatch results len %d != events len %d", len(results), len(events)))
	}
	p := batchPlanPool.Get().(*batchPlan)
	p.reset()
	for i := range events {
		if results[i].Err != nil {
			continue // pre-failed by the caller's validation
		}
		ri, ok := p.byDev[events[i].Device]
		if !ok {
			sh := r.shardFor(events[i].Device)
			ri = len(p.runs)
			p.byDev[events[i].Device] = ri
			p.runs = append(p.runs, batchRun{device: events[i].Device, idx: p.newIdx()})
			if _, seen := p.byShard[sh]; !seen {
				p.shards = append(p.shards, sh)
				p.byShard[sh] = p.newIdx()
			}
			p.byShard[sh] = append(p.byShard[sh], ri)
		}
		p.runs[ri].idx = append(p.runs[ri].idx, i)
	}
	if len(p.shards) == 0 {
		// Every event was pre-failed by the caller's validation.
	} else if len(p.shards) == 1 {
		// Single lock domain: no fan-out, decide inline.
		for _, ri := range p.byShard[p.shards[0]] {
			r.decideRun(ctx, &p.runs[ri], events, results)
		}
	} else {
		// Shard-level fan-out: one goroutine per shard touched keeps
		// goroutine churn proportional to lock domains, not events.
		var wg sync.WaitGroup
		for _, sh := range p.shards {
			wg.Add(1)
			//lint:allow poolsafe wg.Wait below joins every shard goroutine before p is reset and returned to the pool
			go func(runIdx []int) {
				defer wg.Done()
				for _, ri := range runIdx {
					r.decideRun(ctx, &p.runs[ri], events, results)
				}
			}(p.byShard[sh])
		}
		wg.Wait()
	}
	batchPlanPool.Put(p)
}

// decideRun scores one device's run of events under one semaphore
// acquisition. Failure modes mirror the single-event path per event:
// an unknown or exported device answers ErrNoDevice for every slot, an
// acquire that outlives ctx degrades every slot, and per-event faults
// (stale sequence, hook faults) land only in their own slot.
func (r *Registry) decideRun(ctx context.Context, run *batchRun, events []BatchEvent, results []BatchOutcome) {
	d, err := r.lookup(run.device)
	if err != nil {
		for _, i := range run.idx {
			results[i] = BatchOutcome{Err: err}
		}
		return
	}
	if err := d.acquire(ctx); err != nil {
		if d.removed.Load() {
			nde := fmt.Errorf("%w: %q", ErrNoDevice, d.id)
			for _, i := range run.idx {
				results[i] = BatchOutcome{Err: nde}
			}
			return
		}
		tr := obs.NewTrace(obs.TraceIDFrom(ctx), r.clock)
		for _, i := range run.idx {
			tr.Reset()
			results[i] = BatchOutcome{Out: r.degrade(d, events[i].Seq, events[i].Spec, tr, err)}
		}
		return
	}
	if d.removed.Load() {
		d.release()
		nde := fmt.Errorf("%w: %q", ErrNoDevice, d.id)
		for _, i := range run.idx {
			results[i] = BatchOutcome{Err: nde}
		}
		return
	}
	// One trace serves the whole run: the journal copies each event's
	// spans out, so resetting between events is safe, and a per-event
	// trace allocation would dominate the batch path's alloc budget.
	tr := obs.NewTrace(obs.TraceIDFrom(ctx), r.clock)
	for _, i := range run.idx {
		tr.Reset()
		start := time.Now()
		out, err := r.decideLocked(ctx, d, events[i].Seq, events[i].Spec, tr)
		if err == nil && !out.Replayed && !out.Degraded {
			r.decisionLat.Observe(time.Since(start).Seconds())
		}
		results[i] = BatchOutcome{Out: out, Err: err}
	}
	d.release()
}
