package fleet

// Cohort value-table serving support: versioned shared value functions
// with atomic per-cohort hot swap, mirroring the database discipline
// of evolve.go.
//
// Each database cohort owns at most one active value table — the
// cohort-AuRA aggregate published by the cohort worker
// (internal/cohort) — behind an atomic pointer in the cohort's
// dbState. The decide path only ever loads it: publishing, adopting a
// peer's table and rolling back are pointer flips under swapMu that
// never block traffic. Devices converge lazily, exactly like database
// versions: every decision (already holding the device semaphore)
// compares the table last applied to its manager with the cohort's
// active slot and re-seeds its agent when they differ, so a publish is
// atomic at the cohort level and per-device consistent (the prior
// lands between two decisions, never inside one).
//
// A table is pinned to the database content it was learned against
// (DBFingerprint): it is never applied across a database swap, and a
// publish whose binding does not match the active database is refused
// outright (ErrValueTableSkew). Journal entries stamp the version of
// the table their device's agent was last seeded from (0: never
// seeded), so any decision stream can be attributed to the value
// knowledge that produced it and a one-step rollback is observable in
// the flight record.

import (
	"errors"
	"fmt"

	"clrdse/internal/runtime"
)

// Cohort value-table errors, distinguished so the HTTP layer and the
// cohort worker can map them onto statuses and retry policy.
var (
	// ErrNoValueTable reports a cohort that has never had a table
	// published.
	ErrNoValueTable = errors.New("fleet: no value table published")
	// ErrValueTableVersion reports a publish whose version does not
	// advance the active table's version.
	ErrValueTableVersion = errors.New("fleet: value table version must advance the active version")
	// ErrValueTableSkew reports a table whose database binding
	// (version, content fingerprint, state count) does not match the
	// cohort's active database — its state indices would be
	// meaningless.
	ErrValueTableSkew = errors.New("fleet: value table does not match the active database")
	// ErrNoPreviousTable reports a rollback without a retained previous
	// table (rollback is one-step: it cannot be repeated).
	ErrNoPreviousTable = errors.New("fleet: no previous value table to roll back to")
)

// ValueTableStatus is one cohort's value-table snapshot — the body of
// /debug/cohort and the cohort worker's decision input.
type ValueTableStatus struct {
	Database string `json:"database"`
	// Table fields are meaningful only when HasTable.
	HasTable bool   `json:"has_table"`
	Version  uint64 `json:"version,omitempty"`
	Epoch    uint64 `json:"epoch,omitempty"`
	// Fingerprint is the active table's content hash (version
	// excluded) — what the cluster layer compares, alongside the
	// version number, to decide whether two nodes hold the same
	// learned values.
	Fingerprint    uint64  `json:"fingerprint,omitempty"`
	Gamma          float64 `json:"gamma,omitempty"`
	DBVersion      uint64  `json:"db_version,omitempty"`
	DBFingerprint  uint64  `json:"db_fingerprint,omitempty"`
	QoSFingerprint uint64  `json:"qos_fingerprint,omitempty"`
	Devices        int     `json:"devices,omitempty"`
	Events         int     `json:"events,omitempty"`
	// Previous fields are meaningful only when HasPrevious.
	HasPrevious     bool   `json:"has_previous"`
	PreviousVersion uint64 `json:"previous_version,omitempty"`
	// PriorsApplied counts how many times a device agent on this node
	// was seeded from a cohort table (registrations and live
	// re-seeds).
	PriorsApplied uint64 `json:"priors_applied"`
}

// checkTableBinding verifies, under swapMu, that the table was learned
// against exactly the database this cohort is serving.
func (st *dbState) checkTableBinding(t *runtime.ValueTable) error {
	active := st.active.Load()
	if t.DBVersion != active.DB.Version || t.DBFingerprint != active.fp {
		return fmt.Errorf("%w: table bound to db v%d fp %016x, active v%d fp %016x",
			ErrValueTableSkew, t.DBVersion, t.DBFingerprint, active.DB.Version, active.fp)
	}
	if t.Len() != active.DB.Len() {
		return fmt.Errorf("%w: table covers %d states, active database stores %d",
			ErrValueTableSkew, t.Len(), active.DB.Len())
	}
	return nil
}

// PublishValueTable installs t as the named cohort's active value
// table, retaining the displaced table for one-step rollback. The
// table must validate, be bound to the active database, and its
// Version must advance the active table's version (the first publish
// must be version 1 or later). Devices pick the new table up lazily on
// their next decision.
func (r *Registry) PublishValueTable(name string, t *runtime.ValueTable) error {
	st, ok := r.dbs[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoDatabase, name)
	}
	if t == nil {
		return fmt.Errorf("fleet: publish value table %q: nil table", name)
	}
	if err := t.Validate(); err != nil {
		return fmt.Errorf("fleet: publish value table %q: %w", name, err)
	}
	st.swapMu.Lock()
	defer st.swapMu.Unlock()
	if err := st.checkTableBinding(t); err != nil {
		return fmt.Errorf("fleet: publish value table %q: %w", name, err)
	}
	cur := st.vtActive.Load()
	var curVer uint64
	if cur != nil {
		curVer = cur.Version
	}
	if t.Version <= curVer {
		return fmt.Errorf("%w: publish v%d vs active v%d", ErrValueTableVersion, t.Version, curVer)
	}
	st.vtPrev = cur
	st.vtActive.Store(t)
	st.vtVer.Set(int64(t.Version))
	r.cohortPublishes.Inc()
	return nil
}

// AdoptValueTable installs a cluster peer's value table immediately —
// the catch-up path, mirroring AdoptDatabase. The adopted table must
// still bind to this node's active database; among tables for the same
// database the (version, fingerprint) total order decides: a strictly
// higher version wins, and the higher fingerprint breaks a same-version
// tie between tables that independently evolved on different nodes.
// Adopting the exact active table is an idempotent no-op; a losing
// table is refused with ErrValueTableVersion. The displaced table is
// retained for one-step rollback.
func (r *Registry) AdoptValueTable(name string, t *runtime.ValueTable) error {
	st, ok := r.dbs[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoDatabase, name)
	}
	if t == nil {
		return fmt.Errorf("fleet: adopt value table %q: nil table", name)
	}
	if err := t.Validate(); err != nil {
		return fmt.Errorf("fleet: adopt value table %q: %w", name, err)
	}
	st.swapMu.Lock()
	defer st.swapMu.Unlock()
	if err := st.checkTableBinding(t); err != nil {
		return fmt.Errorf("fleet: adopt value table %q: %w", name, err)
	}
	cur := st.vtActive.Load()
	if cur != nil {
		curFP, tFP := cur.Fingerprint(), t.Fingerprint()
		if t.Version == cur.Version && tFP == curFP {
			return nil // already holding exactly this table
		}
		wins := t.Version > cur.Version || (t.Version == cur.Version && tFP > curFP)
		if !wins {
			return fmt.Errorf("%w: adopt v%d fp %016x loses to active v%d fp %016x",
				ErrValueTableVersion, t.Version, tFP, cur.Version, curFP)
		}
	}
	st.vtPrev = cur
	st.vtActive.Store(t)
	st.vtVer.Set(int64(t.Version))
	r.cohortAdoptions.Inc()
	return nil
}

// RollbackValueTable reverts the cohort to the table displaced by the
// last publish or adoption. Rollback is one-step — the reverted-from
// table is not retained. Rolling back past the first publish leaves
// the cohort with no table; devices keep the values already applied to
// their agents (un-learning is not a thing) but new registrations boot
// without a cohort prior, and journal entries keep stamping the
// version each device actually carries.
func (r *Registry) RollbackValueTable(name string) error {
	st, ok := r.dbs[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoDatabase, name)
	}
	st.swapMu.Lock()
	defer st.swapMu.Unlock()
	if st.vtActive.Load() == nil {
		return fmt.Errorf("%w: %q", ErrNoValueTable, name)
	}
	if st.vtPrev == nil && st.vtActive.Load().Version <= 1 {
		// First-publish rollback: revert to "no table".
		st.vtActive.Store(nil)
		st.vtVer.Set(0)
		r.cohortRollbacks.Inc()
		return nil
	}
	if st.vtPrev == nil {
		return fmt.Errorf("%w: %q", ErrNoPreviousTable, name)
	}
	st.vtActive.Store(st.vtPrev)
	st.vtVer.Set(int64(st.vtPrev.Version))
	st.vtPrev = nil
	r.cohortRollbacks.Inc()
	return nil
}

// ValueTable returns the cohort's active value table, nil when none
// has been published — the read side of the cluster catch-up path and
// of /debug/cohort.
func (r *Registry) ValueTable(name string) (*runtime.ValueTable, error) {
	st, ok := r.dbs[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoDatabase, name)
	}
	return st.vtActive.Load(), nil
}

// ValueTableStatus snapshots one cohort's value-table state.
func (r *Registry) ValueTableStatus(name string) (ValueTableStatus, error) {
	st, ok := r.dbs[name]
	if !ok {
		return ValueTableStatus{}, fmt.Errorf("%w: %q", ErrNoDatabase, name)
	}
	return st.vtStatus(r), nil
}

// ValueTableStatuses snapshots every cohort, in registration order.
func (r *Registry) ValueTableStatuses() []ValueTableStatus {
	out := make([]ValueTableStatus, 0, len(r.names))
	for _, name := range r.names {
		out = append(out, r.dbs[name].vtStatus(r))
	}
	return out
}

func (st *dbState) vtStatus(r *Registry) ValueTableStatus {
	st.swapMu.Lock()
	active := st.vtActive.Load()
	prev := st.vtPrev
	st.swapMu.Unlock()
	s := ValueTableStatus{
		Database:      st.name,
		PriorsApplied: uint64(r.cohortPriors.Value()),
	}
	if active != nil {
		s.HasTable = true
		s.Version = active.Version
		s.Epoch = active.Epoch
		s.Fingerprint = active.Fingerprint()
		s.Gamma = active.Gamma
		s.DBVersion = active.DBVersion
		s.DBFingerprint = active.DBFingerprint
		s.QoSFingerprint = active.QoSFingerprint
		s.Devices = active.Devices
		s.Events = active.Events
	}
	if prev != nil {
		s.HasPrevious = true
		s.PreviousVersion = prev.Version
	}
	return s
}

// syncValueTable converges the device's agent onto its cohort's active
// value table. The caller holds the device semaphore, so the prior
// lands between decisions, never inside one. It never fails the
// decision: a table that does not apply (uRA device, gamma mismatch,
// learned against other database content) leaves the device as is,
// with its journal stamp truthful.
func (r *Registry) syncValueTable(d *device) {
	mgr := d.mgr.Load()
	if d.vtMgr != mgr {
		// The manager was swapped (version migration, rollback,
		// handoff) since the last prior application: its agent no
		// longer carries the table's values, so the stamp resets until
		// a matching table is re-applied.
		d.vtMgr, d.vtApplied = nil, nil
		d.vtVersion.Store(0)
	}
	vt := d.state.vtActive.Load()
	if vt == nil || vt == d.vtApplied {
		return
	}
	if vt.DBFingerprint != d.db.Load().fp {
		return // learned against other database content; never cross
	}
	applied, err := mgr.ApplyValuePrior(vt)
	if err != nil || !applied {
		return // uRA device or gamma mismatch: expected in mixed fleets
	}
	d.vtMgr, d.vtApplied = mgr, vt
	d.vtVersion.Store(vt.Version)
	r.cohortPriors.Inc()
}
