package fleettest

import (
	"encoding/json"
	"os"
	"testing"
)

// dumpABArtifacts writes the rendered A/B summary and the published
// cohort value tables to the paths named by COHORT_AB_ARTIFACT /
// COHORT_VTABLE_ARTIFACT (when set). The cohort-soak CI job sets both
// and uploads them when the gate fails, so a broken identity or
// cold-start assertion ships its evidence with the run.
func dumpABArtifacts(t *testing.T, r *ABResult) {
	if r == nil {
		return
	}
	if path := os.Getenv("COHORT_AB_ARTIFACT"); path != "" {
		if err := os.WriteFile(path, []byte(r.Render()), 0o644); err != nil {
			t.Errorf("writing A/B summary artifact: %v", err)
		} else {
			t.Logf("A/B summary written to %s", path)
		}
	}
	if path := os.Getenv("COHORT_VTABLE_ARTIFACT"); path != "" {
		b, err := json.MarshalIndent(r.Tables, "", "  ")
		if err != nil {
			t.Errorf("marshalling value-table artifact: %v", err)
		} else if err := os.WriteFile(path, b, 0o644); err != nil {
			t.Errorf("writing value-table artifact: %v", err)
		} else {
			t.Logf("cohort value tables written to %s", path)
		}
	}
}

// TestABReplayable pins the harness's core property: equal params
// produce byte-identical per-arm decision streams and summaries —
// RunAB is a pure function of its seed.
func TestABReplayable(t *testing.T) {
	p := ABParams{Devices: 3, Events: 25, WarmDevices: 4, WarmEvents: 40}
	a, err := RunAB(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunAB(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Arms) != len(b.Arms) {
		t.Fatalf("arm counts differ: %d vs %d", len(a.Arms), len(b.Arms))
	}
	for i := range a.Arms {
		x, y := a.Arms[i], b.Arms[i]
		if x.Arm != y.Arm {
			t.Fatalf("arm order differs at %d: %s vs %s", i, x.Arm, y.Arm)
		}
		if len(x.Stream) != len(y.Stream) {
			t.Fatalf("%s stream lengths differ: %d vs %d", x.Arm, len(x.Stream), len(y.Stream))
		}
		for j := range x.Stream {
			if x.Stream[j] != y.Stream[j] {
				t.Fatalf("%s decision %d diverged across replays:\n  %s\n  %s",
					x.Arm, j, x.Stream[j], y.Stream[j])
			}
		}
		if x.TotalDRCMs != y.TotalDRCMs || x.MeanEnergyMJ != y.MeanEnergyMJ ||
			x.Reconfigurations != y.Reconfigurations || x.SettleIndex != y.SettleIndex {
			t.Errorf("%s summaries diverged across replays: %+v vs %+v", x.Arm, x, y)
		}
	}
	if a.Render() != b.Render() {
		t.Error("rendered summaries diverged across replays")
	}
}

// TestABIdentityArm pins uRA ≡ AuRA(γ=0) fleet-wide: the aura0 arm
// carries agents seeded from a published γ=0 cohort table, yet its
// decision stream must be byte-identical to the agentless ura arm's.
// This is the identity the cohort-soak CI gate replays under -race.
func TestABIdentityArm(t *testing.T) {
	r, err := RunAB(ABParams{Devices: 3, Events: 30, WarmDevices: 4, WarmEvents: 40})
	if err != nil {
		t.Fatal(err)
	}
	defer dumpABArtifacts(t, r)
	ura, aura0 := r.Arm("ura"), r.Arm("aura0")
	if ura == nil || aura0 == nil {
		t.Fatal("harness lost an arm")
	}
	if len(ura.Stream) != len(aura0.Stream) {
		t.Fatalf("stream lengths differ: %d vs %d", len(ura.Stream), len(aura0.Stream))
	}
	for i := range ura.Stream {
		if ura.Stream[i] != aura0.Stream[i] {
			t.Fatalf("decision %d diverged:\n  ura:   %s\n  aura0: %s",
				i, ura.Stream[i], aura0.Stream[i])
		}
	}
}

// TestABCohortColdStart pins the cohort advantage the tentpole exists
// for: on the seeded schedule, cold-start devices inheriting the warm
// fleet's value table reach steady-state dRC in fewer decisions (and
// spend no more total dRC) than per-device AuRA devices learning from
// zero.
func TestABCohortColdStart(t *testing.T) {
	r, err := RunAB(ABParams{})
	if err != nil {
		t.Fatal(err)
	}
	defer dumpABArtifacts(t, r)
	aura, coh := r.Arm("aura"), r.Arm("cohort")
	if aura == nil || coh == nil {
		t.Fatal("harness lost an arm")
	}
	t.Logf("\n%s", r.Render())
	if coh.SettleIndex >= aura.SettleIndex {
		t.Errorf("cohort settle index %.2f is not below per-device AuRA's %.2f",
			coh.SettleIndex, aura.SettleIndex)
	}
	if coh.TotalDRCMs > aura.TotalDRCMs {
		t.Errorf("cohort total dRC %.3f ms exceeds per-device AuRA's %.3f ms",
			coh.TotalDRCMs, aura.TotalDRCMs)
	}
}
