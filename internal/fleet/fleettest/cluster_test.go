package fleettest

// The harness proves itself: an in-process cluster boots, serves
// device traffic with node attribution, kills and restarts a member
// with the documented error surfaces, and unions the survivors'
// decision journals.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"clrdse/internal/cluster"
	"clrdse/internal/fleet"
)

func postJSON(t *testing.T, url string, v any) *http.Response {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", strings.NewReader(string(b)))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func drain(r *http.Response) {
	io.Copy(io.Discard, r.Body)
	r.Body.Close()
}

func TestClusterHarness(t *testing.T) {
	dbs := Databases(t)
	clus, err := NewCluster(ClusterOptions{TraceSeed: 41})
	if err != nil {
		t.Fatal(err)
	}
	defer clus.Close()

	urls := clus.URLs()
	if len(urls) != 3 || len(clus.Nodes) != 3 {
		t.Fatalf("default cluster has %d nodes, want 3", len(clus.Nodes))
	}
	for i := range clus.Nodes {
		if !clus.Alive(i) {
			t.Fatalf("node %d not alive at boot", i)
		}
	}

	// One device, one scripted decision, entering via node 0.
	boot := LooseSpec(dbs[0].DB)
	const id = "harness-0"
	resp := postJSON(t, urls[0]+"/v1/devices", fleet.RegisterRequest{
		ID:       id,
		Database: dbs[0].Name,
		PRC:      0.5,
		Trigger:  "on-violation",
		Initial:  fleet.QoSSpecJSON{SMaxMs: boot.SMaxMs, FMin: boot.FMin},
	})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("register: status %d", resp.StatusCode)
	}
	if resp.Header.Get(cluster.NodeHeader) == "" {
		t.Fatal("register response carries no node attribution")
	}
	drain(resp)

	spec := Script(dbs[0].DB, 3, 1)[0]
	resp = postJSON(t, urls[0]+"/v1/devices/"+id+"/qos", map[string]any{
		"s_max_ms": spec.SMaxMs, "f_min": spec.FMin, "seq": 0,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("qos: status %d", resp.StatusCode)
	}
	drain(resp)

	if len(clus.Journal()) == 0 {
		t.Fatal("journal empty after a decision")
	}

	// Kill: the member drains, answers 503, and refuses a second kill.
	ctx := context.Background()
	if err := clus.Kill(ctx, 1); err != nil {
		t.Fatalf("kill: %v", err)
	}
	if clus.Alive(1) {
		t.Fatal("node 1 still alive after Kill")
	}
	if err := clus.Kill(ctx, 1); err == nil {
		t.Fatal("second Kill succeeded")
	}
	got, err := http.Get(urls[1] + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if got.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("killed node answered %d, want 503", got.StatusCode)
	}
	drain(got)

	// The device is still served by the survivors.
	got, err = http.Get(urls[0] + "/v1/devices/" + id)
	if err != nil {
		t.Fatal(err)
	}
	if got.StatusCode != http.StatusOK {
		t.Fatalf("device after kill: status %d", got.StatusCode)
	}
	drain(got)

	// Restart: back on the same address, and a second Restart refuses.
	if err := clus.Restart(ctx, 1); err != nil {
		t.Fatalf("restart: %v", err)
	}
	if !clus.Alive(1) {
		t.Fatal("node 1 not alive after Restart")
	}
	if err := clus.Restart(ctx, 1); err == nil {
		t.Fatal("second Restart succeeded")
	}
	got, err = http.Get(urls[1] + "/v1/cluster/ring")
	if err != nil {
		t.Fatal(err)
	}
	if got.StatusCode != http.StatusOK {
		t.Fatalf("restarted node ring: status %d", got.StatusCode)
	}
	drain(got)

	// The journal survived the membership churn.
	found := false
	for _, e := range clus.Journal() {
		if e.Entry.Device == id {
			found = true
		}
	}
	if !found {
		t.Fatalf("journal lost %s across kill/restart", id)
	}
}

func TestClusterHarnessOptionDefaults(t *testing.T) {
	clus, err := NewCluster(ClusterOptions{Nodes: 2, VNodes: 16, Redirect: true, TraceSeed: 43})
	if err != nil {
		t.Fatal(err)
	}
	defer clus.Close()
	if len(clus.URLs()) != 2 {
		t.Fatalf("cluster has %d nodes, want 2", len(clus.URLs()))
	}
	info := clus.Nodes[0].Node.RingInfo()
	if info.VNodes != 16 || info.Forward != "redirect" {
		t.Fatalf("ring doc = %+v, want 16 vnodes in redirect mode", info)
	}
	for i := range clus.Nodes {
		if want := fmt.Sprintf("node-%d", i); clus.Nodes[i].ID != want {
			t.Fatalf("node %d ID = %q, want %q", i, clus.Nodes[i].ID, want)
		}
	}
}
