package fleettest

// In-process multi-node cluster harness: N full clrserved stacks
// (fleet.Server wrapped with cluster.Node middleware), each on its own
// loopback listener, with deterministic kill/restart. "Kill" models a
// SIGTERM drain — the node hands every device to the survivors, stops
// answering, and the peers mark it dead; "Restart" brings a fresh
// server up on the same address and the peers rebalance its devices
// back. The harness returns errors rather than taking a testing.TB so
// cmd/clrchaos can drive the same cluster outside `go test`.

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"sync/atomic"
	"time"

	"clrdse/internal/cluster"
	"clrdse/internal/fleet"
	"clrdse/internal/obs"
)

// ClusterOptions configures an in-process cluster.
type ClusterOptions struct {
	// Nodes is the member count (<= 0 selects 3).
	Nodes int
	// VNodes is the ring's virtual-node count (0 selects the cluster
	// package default).
	VNodes int
	// Redirect selects 307-redirect forwarding instead of proxying.
	Redirect bool
	// Databases are the decision bases every node serves (nil selects
	// the package fixture via DatabasesE).
	Databases []fleet.NamedDatabase
	// DecideTimeout is each node's per-decision budget (0 selects the
	// fleet default).
	DecideTimeout time.Duration
	// TraceSeed derives each node's trace minter seeds.
	TraceSeed int64
	// AuthToken, when set, gates every node's handoff/membership
	// endpoints (cluster.Config.AuthToken) — handoff pushes between
	// the nodes carry it automatically.
	AuthToken string
	// Logger receives every node's logs (nil discards them).
	Logger *slog.Logger
}

// ClusterNode is one running member.
type ClusterNode struct {
	// ID is the node's ring name ("node-0"); URL its base URL.
	ID  string
	URL string
	// Srv and Node are the live stack (swapped on Restart).
	Srv  *fleet.Server
	Node *cluster.Node

	handler atomic.Pointer[http.Handler]
	alive   bool
}

// Cluster is a running in-process cluster.
type Cluster struct {
	// Nodes are the members, index-addressable for Kill/Restart.
	Nodes []*ClusterNode

	opt   ClusterOptions
	peers []cluster.Peer
	lns   []net.Listener
	hss   []*http.Server
}

// NewCluster boots an N-node cluster on loopback listeners. Callers
// must Close it.
func NewCluster(opt ClusterOptions) (*Cluster, error) {
	if opt.Nodes <= 0 {
		opt.Nodes = 3
	}
	if opt.Databases == nil {
		dbs, err := DatabasesE()
		if err != nil {
			return nil, err
		}
		opt.Databases = dbs
	}
	if opt.Logger == nil {
		opt.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	c := &Cluster{opt: opt}
	ok := false
	defer func() {
		if !ok {
			c.Close()
		}
	}()
	// Bind all listeners first: the full peer list (IDs and URLs) must
	// exist before any node is built.
	for i := 0; i < opt.Nodes; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, fmt.Errorf("fleettest: cluster listener %d: %w", i, err)
		}
		c.lns = append(c.lns, ln)
		c.peers = append(c.peers, cluster.Peer{
			ID:  fmt.Sprintf("node-%d", i),
			URL: "http://" + ln.Addr().String(),
		})
	}
	for i := 0; i < opt.Nodes; i++ {
		cn := &ClusterNode{ID: c.peers[i].ID, URL: c.peers[i].URL, alive: true}
		if err := c.buildStack(cn, i); err != nil {
			return nil, err
		}
		c.Nodes = append(c.Nodes, cn)
		hs := &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			(*cn.handler.Load()).ServeHTTP(w, r)
		})}
		c.hss = append(c.hss, hs)
		//lint:allow errdrop Serve returns ErrServerClosed on teardown; a real accept error fails the test through the dead port
		go hs.Serve(c.lns[i])
	}
	ok = true
	return c, nil
}

// buildStack builds (or rebuilds, on Restart) node i's fleet server
// and cluster layer and installs its handler.
func (c *Cluster) buildStack(cn *ClusterNode, i int) error {
	srv, err := fleet.NewServer(fleet.ServerConfig{
		Databases:     c.opt.Databases,
		DecideTimeout: c.opt.DecideTimeout,
		TraceSeed:     c.opt.TraceSeed + int64(i),
		Logger:        c.opt.Logger,
	})
	if err != nil {
		return fmt.Errorf("fleettest: cluster node %d server: %w", i, err)
	}
	node, err := cluster.New(cluster.Config{
		Self:      c.peers[i].ID,
		Peers:     c.peers,
		VNodes:    c.opt.VNodes,
		Redirect:  c.opt.Redirect,
		TraceSeed: c.opt.TraceSeed + 1000 + int64(i),
		AuthToken: c.opt.AuthToken,
		Logger:    c.opt.Logger,
	}, srv)
	if err != nil {
		return fmt.Errorf("fleettest: cluster node %d: %w", i, err)
	}
	srv.Wrap(node.Middleware)
	cn.Srv, cn.Node = srv, node
	h := srv.Handler()
	cn.handler.Store(&h)
	return nil
}

// URLs lists the members' base URLs in node order — ready for
// client.Config.Targets.
func (c *Cluster) URLs() []string {
	out := make([]string, len(c.peers))
	for i, p := range c.peers {
		out[i] = p.URL
	}
	return out
}

// Alive reports whether node i is currently serving.
func (c *Cluster) Alive(i int) bool { return c.Nodes[i].alive }

// Kill drains node i (SIGTERM model): every device it owns is handed
// to the survivors, its address starts answering 503, and the live
// peers mark it dead (which rebalances nothing — the departed node
// already pushed its devices to their new owners).
func (c *Cluster) Kill(ctx context.Context, i int) error {
	cn := c.Nodes[i]
	if !cn.alive {
		return fmt.Errorf("fleettest: node %d already dead", i)
	}
	if err := cn.Node.Leave(ctx); err != nil {
		return fmt.Errorf("fleettest: draining node %d: %w", i, err)
	}
	var down http.Handler = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"node down"}`, http.StatusServiceUnavailable)
	})
	cn.handler.Store(&down)
	cn.alive = false
	flip := map[string]bool{cn.ID: false}
	for j, other := range c.Nodes {
		if j == i || !other.alive {
			continue
		}
		if err := other.Node.SetStates(ctx, flip); err != nil {
			return fmt.Errorf("fleettest: marking node %d dead on node %d: %w", i, j, err)
		}
	}
	return nil
}

// Restart brings node i back on its original address with a fresh
// fleet server (all serving state was drained away at Kill). The new
// stack adopts the cluster's current deadness map, then the live
// peers mark it alive and hand back the devices it now owns.
func (c *Cluster) Restart(ctx context.Context, i int) error {
	cn := c.Nodes[i]
	if cn.alive {
		return fmt.Errorf("fleettest: node %d already alive", i)
	}
	if err := c.buildStack(cn, i); err != nil {
		return err
	}
	dead := make(map[string]bool)
	for j, other := range c.Nodes {
		if j != i && !other.alive {
			dead[other.ID] = false
		}
	}
	if len(dead) > 0 {
		if err := cn.Node.SetStates(ctx, dead); err != nil {
			return fmt.Errorf("fleettest: seeding node %d membership: %w", i, err)
		}
	}
	cn.alive = true
	flip := map[string]bool{cn.ID: true}
	for j, other := range c.Nodes {
		if j == i || !other.alive {
			continue
		}
		if err := other.Node.SetStates(ctx, flip); err != nil {
			return fmt.Errorf("fleettest: marking node %d alive on node %d: %w", i, j, err)
		}
	}
	return nil
}

// JournalEntry is one decision-journal entry tagged with the node
// hosting the copy.
type JournalEntry struct {
	Node  string
	Entry obs.Entry
}

// Journal unions every live node's decision-journal snapshot — the
// cluster-wide flight record. Entries a migration copied appear once
// per hosting node; exactly-once assertions dedup identical entries
// first.
func (c *Cluster) Journal() []JournalEntry {
	var out []JournalEntry
	for _, cn := range c.Nodes {
		if !cn.alive {
			continue
		}
		for _, e := range cn.Srv.Registry().Decisions("", 0) {
			out = append(out, JournalEntry{Node: cn.ID, Entry: e})
		}
	}
	return out
}

// Close shuts every member down and releases the listeners.
func (c *Cluster) Close() {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	for _, hs := range c.hss {
		//lint:allow errdrop best-effort teardown; a hung shutdown is bounded by the context deadline
		_ = hs.Shutdown(ctx)
	}
	for _, ln := range c.lns {
		//lint:allow errdrop Shutdown above already closed the listener; this double-close is belt and braces
		_ = ln.Close()
	}
}
