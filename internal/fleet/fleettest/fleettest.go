// Package fleettest provides shared fixtures for tests that exercise
// the fleet decision service from outside the fleet package (the
// resilient client, the chaos soak). It runs the design-time flow once
// per process on a small synthetic application and hands out the
// resulting databases, plus deterministic QoS event scripts.
package fleettest

import (
	"sync"
	"testing"

	"clrdse/internal/dse"
	"clrdse/internal/fleet"
	"clrdse/internal/ga"
	"clrdse/internal/mapping"
	"clrdse/internal/platform"
	"clrdse/internal/relmodel"
	"clrdse/internal/rng"
	"clrdse/internal/runtime"
	"clrdse/internal/taskgraph"
)

type fixture struct {
	problem *dse.Problem
	base    *dse.Database
	red     *dse.Database
}

var (
	once   sync.Once
	fix    fixture
	fixErr error
)

func get(tb testing.TB) fixture {
	tb.Helper()
	f, err := build()
	if err != nil {
		tb.Fatal(err)
	}
	return f
}

// build runs the design-time flow once per process. It is the
// TB-free entry so non-test embedders (cmd/clrchaos cluster mode) can
// share the fixture.
func build() (fixture, error) {
	once.Do(func() {
		plat := platform.Default()
		g, err := taskgraph.Generate(taskgraph.GenParams{Seed: 51, NumTasks: 20}, plat)
		if err != nil {
			fixErr = err
			return
		}
		prob := &dse.Problem{
			Space:  &mapping.Space{Graph: g, Platform: plat, Catalogue: relmodel.DefaultCatalogue()},
			Env:    relmodel.DefaultEnv(),
			SMaxMs: g.PeriodMs,
			FMin:   0.90,
		}
		base, err := dse.RunBase(prob, ga.Params{PopSize: 28, Generations: 12, Seed: 1})
		if err != nil {
			fixErr = err
			return
		}
		red, err := dse.RunReD(prob, base, dse.ReDParams{
			GA: ga.Params{PopSize: 16, Generations: 8, Seed: 2}, MaxExtraPerSeed: 2,
		})
		if err != nil {
			fixErr = err
			return
		}
		fix = fixture{problem: prob, base: base, red: red}
	})
	return fix, fixErr
}

// Databases returns the fixture's decision bases, named "red" (the
// run-time-enriched database) and "based" (the stage-1 Pareto front).
func Databases(tb testing.TB) []fleet.NamedDatabase {
	f := get(tb)
	return namedDBs(f)
}

// DatabasesE is Databases for embedders without a testing.TB (the
// clrchaos cluster soak).
func DatabasesE() ([]fleet.NamedDatabase, error) {
	f, err := build()
	if err != nil {
		return nil, err
	}
	return namedDBs(f), nil
}

func namedDBs(f fixture) []fleet.NamedDatabase {
	return []fleet.NamedDatabase{
		{Name: "red", DB: f.red, Space: f.problem.Space},
		{Name: "based", DB: f.base, Space: f.problem.Space},
	}
}

// Script precomputes a device's deterministic QoS event sequence from
// the database's satisfiable envelope: equal seeds yield identical
// scripts, independent of scheduling.
func Script(db *dse.Database, seed int64, events int) []runtime.QoSSpec {
	q := runtime.ModelFromDatabase(db)
	src := rng.New(seed)
	stream := q.Stream()
	specs := make([]runtime.QoSSpec, events)
	for i := range specs {
		specs[i] = stream.Next(src)
	}
	return specs
}

// LooseSpec returns a specification every point of the database
// satisfies — a safe boot specification.
func LooseSpec(db *dse.Database) runtime.QoSSpec {
	n := fleet.NamedDatabase{DB: db}
	_, maxS, minF, _ := n.Envelope()
	return runtime.QoSSpec{SMaxMs: maxS, FMin: minF}
}
