package fleettest

// Deterministic A/B harness for the cohort-AuRA evaluation: one seeded
// fleet event schedule, replayed through four arms that differ only in
// how (and whether) value knowledge reaches the devices:
//
//	ura      — plain uRA devices (no agent)
//	aura0    — AuRA(γ=0) devices seeded from a published γ=0 cohort
//	           table: the identity arm; the paper subsumes uRA into
//	           AuRA at γ=0, so its decision stream must be
//	           byte-identical to ura's
//	aura     — per-device AuRA(γ): each device learns alone from zero
//	cohort   — cohort AuRA(γ): cold-start devices inherit a cohort
//	           table aggregated from a warm fleet's journal
//
// Everything is derived from ABParams.Seed: the warm fleet's scripts,
// the cold devices' scripts, and the interleaving (event-major over
// devices in ID order) are all fixed, so two runs with equal params
// produce byte-identical per-arm decision streams — the property the
// cohort-soak CI gate replays and diffs.

import (
	"fmt"
	"math"
	"strings"

	"clrdse/internal/cohort"
	"clrdse/internal/dse"
	"clrdse/internal/fleet"
	"clrdse/internal/rng"
	"clrdse/internal/runtime"
)

// TightSpec returns a specification only the database's fastest stored
// point(s) satisfy — the opposite pole of LooseSpec. Alternating the
// two is the regime where value knowledge pays: under the loose spec
// the energy-minimal point looks attractive, but every tight event
// forces a reconfiguration back, and only a learned VD (the discounted
// future-dRC estimate) exposes that churn to the scorer.
func TightSpec(db *dse.Database) runtime.QoSSpec {
	s, _ := tightBand(db)
	return s
}

// tightBand returns the tight specification plus the makespan headroom
// to the second-fastest stored point: jitter inside half that band
// never changes the feasible set.
func tightBand(db *dse.Database) (runtime.QoSSpec, float64) {
	minS, second := math.Inf(1), math.Inf(1)
	minF := math.Inf(1)
	for _, p := range db.Points {
		switch {
		case p.MakespanMs < minS:
			second = minS
			minS = p.MakespanMs
		case p.MakespanMs > minS && p.MakespanMs < second:
			second = p.MakespanMs
		}
		if p.Reliability < minF {
			minF = p.Reliability
		}
	}
	band := 0.0
	if !math.IsInf(second, 1) {
		band = second - minS
	}
	return runtime.QoSSpec{SMaxMs: minS, FMin: minF}, band
}

// OscillatingScript precomputes a device's deterministic tight/loose
// QoS event sequence: specs alternate between TightSpec and LooseSpec
// with a seeded phase and seeded jitter on the makespan bound that
// never changes either spec's feasible set. Equal seeds yield
// identical scripts.
func OscillatingScript(db *dse.Database, seed int64, events int) []runtime.QoSSpec {
	src := rng.New(seed)
	loose := LooseSpec(db)
	tight, band := tightBand(db)
	phase := src.IntRange(0, 1)
	specs := make([]runtime.QoSSpec, events)
	for i := range specs {
		if (i+phase)%2 == 0 {
			s := loose
			s.SMaxMs *= 1 + 0.05*src.Float64() // only ever looser
			specs[i] = s
		} else {
			s := tight
			s.SMaxMs += 0.5 * band * src.Float64() // below the second point
			specs[i] = s
		}
	}
	return specs
}

// ABParams sizes the harness. Zero values select the defaults noted on
// each field; Seed 0 selects seed 1.
type ABParams struct {
	// Devices is the cold-start device count per arm (default 4).
	Devices int
	// Events is the QoS event count per cold device (default 40).
	Events int
	// WarmDevices and WarmEvents size the warm fleet whose journal the
	// cohort table is aggregated from (defaults 6 and 60).
	WarmDevices int
	WarmEvents  int
	// Gamma is the AuRA discount of the learning arms (default 0.8).
	Gamma float64
	// PRC is every device's reconfiguration-cost knob (default 0.5).
	PRC float64
	// Seed roots every event script (default 1).
	Seed int64
}

func (p *ABParams) defaults() {
	if p.Devices <= 0 {
		p.Devices = 4
	}
	if p.Events <= 0 {
		p.Events = 40
	}
	if p.WarmDevices <= 0 {
		p.WarmDevices = 6
	}
	if p.WarmEvents <= 0 {
		p.WarmEvents = 60
	}
	if p.Gamma == 0 {
		p.Gamma = 0.8
	}
	if p.PRC == 0 {
		p.PRC = 0.5
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
}

// ArmResult is one arm's replayable outcome.
type ArmResult struct {
	Arm string `json:"arm"`
	// Stream is the arm's full decision stream, one key per decision
	// in the fixed interleaving order — the byte-comparison surface.
	Stream []string `json:"stream"`
	// Reconfigurations counts decisions that moved the configuration.
	Reconfigurations int `json:"reconfigurations"`
	// TotalDRCMs and MeanDRCMs aggregate reconfiguration cost over the
	// arm's decisions.
	TotalDRCMs float64 `json:"total_drc_ms"`
	MeanDRCMs  float64 `json:"mean_drc_ms"`
	// MeanEnergyMJ is the mean energy of the configurations the arm's
	// decisions selected.
	MeanEnergyMJ float64 `json:"mean_energy_mj"`
	// SettleIndex is the mean, over the arm's devices, of the number
	// of decisions before the device's behaviour becomes phase-
	// periodic: the 1-based index of the last decision whose chosen
	// point differs from the choice made two events earlier (the
	// schedule's period). Until that index the device is still
	// changing its policy — learning — and its per-decision dRC has
	// not reached steady state; 0 means steady from the start.
	SettleIndex float64 `json:"settle_index"`
}

// ABResult is the harness outcome, in fixed arm order.
type ABResult struct {
	Params ABParams    `json:"params"`
	Arms   []ArmResult `json:"arms"`
	// Tables holds the cohort value table each seeded arm published
	// before registering its devices, keyed by arm name — the triage
	// artifact the cohort-soak CI job uploads on failure.
	Tables map[string]*runtime.ValueTable `json:"tables,omitempty"`
}

// Arm returns the named arm's result, nil when absent.
func (r *ABResult) Arm(name string) *ArmResult {
	for i := range r.Arms {
		if r.Arms[i].Arm == name {
			return &r.Arms[i]
		}
	}
	return nil
}

// DecisionKey serialises one decision for byte-level stream
// comparison: every field that distinguishes two decisions on the same
// event schedule, none that depends on wall clock or scheduling.
func DecisionKey(device string, seq int, d runtime.Decision) string {
	return fmt.Sprintf("%s/%d:%d->%d r=%v v=%v drc=%.9g", device, seq, d.From, d.To, d.Reconfigured, d.Violated, d.Cost.Total())
}

// RunAB replays the seeded schedule through all four arms and returns
// their streams and fleet-wide summaries. It is TB-free so both tests
// and cmd/experiments can embed it.
func RunAB(p ABParams) (*ABResult, error) {
	p.defaults()
	f, err := build()
	if err != nil {
		return nil, err
	}
	db := f.red
	spec := LooseSpec(db)

	// Cold-device scripts, shared across arms so the arms differ only
	// in value knowledge.
	scripts := make([][]runtime.QoSSpec, p.Devices)
	for i := range scripts {
		scripts[i] = OscillatingScript(db, p.Seed+int64(i)*101, p.Events)
	}

	// Warm fleet: AuRA(γ) devices whose journal becomes the cohort
	// table. Their scripts draw from seeds disjoint with the cold ones.
	warm, err := fleet.NewRegistry(namedDBs(f), 4)
	if err != nil {
		return nil, err
	}
	for i := 0; i < p.WarmDevices; i++ {
		id := fmt.Sprintf("warm-%02d", i)
		if _, err := warm.Register(fleet.DeviceParams{
			ID: id, Database: "red", PRC: p.PRC, Gamma: p.Gamma, Initial: spec,
		}); err != nil {
			return nil, err
		}
		for _, s := range OscillatingScript(db, p.Seed+100_000+int64(i)*103, p.WarmEvents) {
			if _, err := warm.Decide(id, s); err != nil {
				return nil, err
			}
		}
	}
	entries := warm.DecisionsForDatabase("red", 0)
	_, fp, err := warm.ActiveSnapshot("red")
	if err != nil {
		return nil, err
	}
	table := func(gamma float64) (*runtime.ValueTable, error) {
		t, err := cohort.Aggregate(cohort.AggregateParams{
			DB: db, DBFingerprint: fp, Gamma: gamma,
		}, entries)
		if err != nil {
			return nil, fmt.Errorf("fleettest: aggregate warm journal: %w", err)
		}
		t.Version, t.Epoch = 1, 1
		return t, nil
	}

	arms := []struct {
		name      string
		gamma     float64
		withAgent bool
		seeded    bool // publish a cohort table before registration
	}{
		{"ura", 0, false, false},
		{"aura0", 0, true, true},
		{"aura", p.Gamma, false, false},
		{"cohort", p.Gamma, false, true},
	}
	out := &ABResult{Params: p, Tables: make(map[string]*runtime.ValueTable)}
	for _, arm := range arms {
		reg, err := fleet.NewRegistry(namedDBs(f), 4)
		if err != nil {
			return nil, err
		}
		if arm.seeded {
			t, err := table(arm.gamma)
			if err != nil {
				return nil, err
			}
			if err := reg.PublishValueTable("red", t); err != nil {
				return nil, fmt.Errorf("fleettest: publish %s table: %w", arm.name, err)
			}
			out.Tables[arm.name] = t
		}
		res := ArmResult{Arm: arm.name}
		chosen := make([][]int, p.Devices) // per-device To sequence
		for i := 0; i < p.Devices; i++ {
			if _, err := reg.Register(fleet.DeviceParams{
				ID: fmt.Sprintf("dev-%02d", i), Database: "red", PRC: p.PRC,
				Gamma: arm.gamma, WithAgent: arm.withAgent, Initial: spec,
			}); err != nil {
				return nil, err
			}
		}
		// Event-major interleaving: every device sees event e before
		// any device sees event e+1, like synchronized fleet traffic.
		for e := 0; e < p.Events; e++ {
			for i := 0; i < p.Devices; i++ {
				dec, err := reg.Decide(fmt.Sprintf("dev-%02d", i), scripts[i][e])
				if err != nil {
					return nil, err
				}
				res.Stream = append(res.Stream, DecisionKey(fmt.Sprintf("dev-%02d", i), e+1, dec))
				if dec.Reconfigured {
					res.Reconfigurations++
				}
				res.TotalDRCMs += dec.Cost.Total()
				res.MeanEnergyMJ += db.Points[dec.To].EnergyMJ
				chosen[i] = append(chosen[i], dec.To)
			}
		}
		n := p.Devices * p.Events
		res.MeanDRCMs = res.TotalDRCMs / float64(n)
		res.MeanEnergyMJ /= float64(n)
		for _, seq := range chosen {
			settle := 0
			for e := 2; e < len(seq); e++ {
				if seq[e] != seq[e-2] {
					settle = e + 1
				}
			}
			res.SettleIndex += float64(settle)
		}
		res.SettleIndex /= float64(p.Devices)
		out.Arms = append(out.Arms, res)
	}
	return out, nil
}

// Render formats the summary as the fixed-width table cmd/experiments
// prints (the streams are omitted; they are the test surface).
func (r *ABResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Cohort A/B: %d devices x %d events, warm %d x %d, gamma %.2f, seed %d\n\n",
		r.Params.Devices, r.Params.Events, r.Params.WarmDevices, r.Params.WarmEvents,
		r.Params.Gamma, r.Params.Seed)
	fmt.Fprintf(&b, "%-8s %8s %12s %12s %14s %12s\n",
		"arm", "reconfs", "total dRC ms", "mean dRC ms", "mean energy mJ", "settle idx")
	for _, a := range r.Arms {
		fmt.Fprintf(&b, "%-8s %8d %12.3f %12.4f %14.4f %12.2f\n",
			a.Arm, a.Reconfigurations, a.TotalDRCMs, a.MeanDRCMs, a.MeanEnergyMJ, a.SettleIndex)
	}
	b.WriteString("\nura and aura0 streams are byte-identical by construction (AuRA(γ=0) ≡ uRA);\n")
	b.WriteString("cohort inherits the warm fleet's value table at cold start, aura learns from zero.\n")
	return b.String()
}
