package fleet

import (
	"context"
	"errors"
	"strings"
	"testing"

	"clrdse/internal/dse"
	"clrdse/internal/runtime"
)

// versioned returns a shallow copy of db stamped with version v, so
// fixture databases can be proposed as candidates without mutating the
// shared fixture.
func versioned(db *dse.Database, v uint64) *dse.Database {
	cp := *db
	cp.Version = v
	return &cp
}

func TestEvolveLifecycle(t *testing.T) {
	f := getFixture(t)
	reg, err := NewRegistry(fleetDatabases(t), 4)
	if err != nil {
		t.Fatal(err)
	}

	// Version must advance: the active database is version 0.
	if err := reg.ProposeDatabase("red", versioned(f.base, 0)); !errors.Is(err, ErrCandidateVersion) {
		t.Errorf("propose v0 over v0: %v, want ErrCandidateVersion", err)
	}
	if err := reg.ProposeDatabase("nope", versioned(f.base, 1)); !errors.Is(err, ErrNoDatabase) {
		t.Errorf("propose to unknown cohort: %v, want ErrNoDatabase", err)
	}
	if err := reg.CutoverDatabase("red"); !errors.Is(err, ErrNoCandidate) {
		t.Errorf("cutover without candidate: %v, want ErrNoCandidate", err)
	}
	if err := reg.RollbackDatabase("red"); !errors.Is(err, ErrNoPrevious) {
		t.Errorf("rollback without previous: %v, want ErrNoPrevious", err)
	}

	if err := reg.ProposeDatabase("red", versioned(f.base, 1)); err != nil {
		t.Fatal(err)
	}
	st, err := reg.EvolveStatus("red")
	if err != nil {
		t.Fatal(err)
	}
	if !st.HasCandidate || st.CandidateVersion != 1 || st.CandidatePoints != f.base.Len() {
		t.Errorf("after propose: %+v", st)
	}
	if st.ActiveVersion != 0 {
		t.Errorf("propose must not touch the active version, got %d", st.ActiveVersion)
	}

	if err := reg.DropCandidate("red"); err != nil {
		t.Fatal(err)
	}
	if st, _ = reg.EvolveStatus("red"); st.HasCandidate {
		t.Error("candidate survived DropCandidate")
	}
	if err := reg.DropCandidate("red"); !errors.Is(err, ErrNoCandidate) {
		t.Errorf("double drop: %v, want ErrNoCandidate", err)
	}

	if err := reg.ProposeDatabase("red", versioned(f.base, 1)); err != nil {
		t.Fatal(err)
	}
	if err := reg.CutoverDatabase("red"); err != nil {
		t.Fatal(err)
	}
	st, _ = reg.EvolveStatus("red")
	if st.ActiveVersion != 1 || st.HasCandidate || !st.HasPrevious || st.PreviousVersion != 0 {
		t.Errorf("after cutover: %+v", st)
	}
	if db, err := reg.ActiveDatabase("red"); err != nil || db.Version != 1 {
		t.Errorf("ActiveDatabase after cutover: v%d, %v", db.Version, err)
	}

	if err := reg.RollbackDatabase("red"); err != nil {
		t.Fatal(err)
	}
	st, _ = reg.EvolveStatus("red")
	if st.ActiveVersion != 0 || st.HasPrevious {
		t.Errorf("after rollback: %+v", st)
	}
	// Rollback is one-step.
	if err := reg.RollbackDatabase("red"); !errors.Is(err, ErrNoPrevious) {
		t.Errorf("second rollback: %v, want ErrNoPrevious", err)
	}
}

func TestShadowWindowAccounting(t *testing.T) {
	f := getFixture(t)
	reg, err := NewRegistry(fleetDatabases(t), 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Register(DeviceParams{
		ID: "shadow-1", Database: "red", PRC: 0.5,
		Trigger: runtime.TriggerAlways, Initial: looseSpec(f.red),
	}); err != nil {
		t.Fatal(err)
	}
	script := deviceScript(f.red, 301, 30)

	// Pre-propose decisions must not be shadow-scored.
	for _, spec := range script[:10] {
		if _, err := reg.Decide("shadow-1", spec); err != nil {
			t.Fatal(err)
		}
	}
	if st, _ := reg.EvolveStatus("red"); st.ShadowEvents != 0 {
		t.Fatalf("shadow events before any candidate: %d", st.ShadowEvents)
	}

	// The stage-1 database as candidate: a genuinely different point
	// set, so divergences are possible and must be accounted.
	if err := reg.ProposeDatabase("red", versioned(f.base, 1)); err != nil {
		t.Fatal(err)
	}
	for _, spec := range script[10:] {
		if _, err := reg.Decide("shadow-1", spec); err != nil {
			t.Fatal(err)
		}
	}
	st, err := reg.EvolveStatus("red")
	if err != nil {
		t.Fatal(err)
	}
	if st.ShadowEvents != 20 {
		t.Errorf("shadow events = %d, want 20", st.ShadowEvents)
	}
	if st.Agreements+st.Divergences != st.ShadowEvents {
		t.Errorf("agreements %d + divergences %d != events %d", st.Agreements, st.Divergences, st.ShadowEvents)
	}
	if want := float64(st.Agreements) / float64(st.ShadowEvents); st.Agreement != want {
		t.Errorf("agreement = %v, want %v", st.Agreement, want)
	}
	if uint64(len(st.Samples)) > st.Divergences || len(st.Samples) > maxDivergenceSamples {
		t.Errorf("%d samples for %d divergences", len(st.Samples), st.Divergences)
	}
	for _, s := range st.Samples {
		if s.Device != "shadow-1" || s.ActiveVersion != 0 || s.ShadowVersion != 1 {
			t.Errorf("bad divergence sample: %+v", s)
		}
	}

	// Serving stayed on the active version throughout the window.
	for _, e := range reg.Decisions("shadow-1", 0) {
		if e.DBVersion != 0 {
			t.Errorf("seq %d journaled against v%d during shadow window", e.Seq, e.DBVersion)
		}
	}

	// Re-proposing resets the window.
	if err := reg.ProposeDatabase("red", versioned(f.base, 2)); err != nil {
		t.Fatal(err)
	}
	if st, _ = reg.EvolveStatus("red"); st.ShadowEvents != 0 || st.CandidateVersion != 2 {
		t.Errorf("window not reset on re-propose: %+v", st)
	}
}

// TestCutoverPreservesPreSwapDecisions is the tentpole's byte-identity
// claim: decisions made before a cutover — including the whole shadow
// window — must be byte-identical to a frozen-database reference run,
// the replay cache must answer pre-swap retries identically after the
// swap, and a rollback must restore the pre-cutover serving state.
func TestCutoverPreservesPreSwapDecisions(t *testing.T) {
	f := getFixture(t)
	const preN, shadowN, postN, tailN = 12, 12, 8, 8
	script := deviceScript(f.red, 77, preN+shadowN+postN+tailN)
	params := DeviceParams{
		ID: "dev-swap", Database: "red", PRC: 0.5,
		Trigger: runtime.TriggerOnViolation, Gamma: 0.8, Initial: looseSpec(f.red),
	}

	// Frozen reference: no evolution, same script.
	ref, err := NewRegistry(fleetDatabases(t), 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ref.Register(params); err != nil {
		t.Fatal(err)
	}
	var refKeys []string
	for i, spec := range script {
		out, err := ref.DecideCtx(context.Background(), "dev-swap", uint64(i+1), spec)
		if err != nil {
			t.Fatal(err)
		}
		refKeys = append(refKeys, decisionKey(t, out.Decision))
	}

	// Evolving run: propose after preN, cut over after preN+shadowN,
	// roll back after postN more.
	reg, err := NewRegistry(fleetDatabases(t), 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Register(params); err != nil {
		t.Fatal(err)
	}
	decide := func(i int) DecideOutcome {
		t.Helper()
		out, err := reg.DecideCtx(context.Background(), "dev-swap", uint64(i+1), script[i])
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	var keys []string
	for i := 0; i < preN; i++ {
		keys = append(keys, decisionKey(t, decide(i).Decision))
	}
	if err := reg.ProposeDatabase("red", versioned(f.base, 1)); err != nil {
		t.Fatal(err)
	}
	for i := preN; i < preN+shadowN; i++ {
		keys = append(keys, decisionKey(t, decide(i).Decision))
	}
	for i, k := range keys {
		if k != refKeys[i] {
			t.Fatalf("pre-swap decision %d diverged from frozen reference:\n  got  %s\n  want %s", i, k, refKeys[i])
		}
	}
	preSwapLast := keys[len(keys)-1]

	if err := reg.CutoverDatabase("red"); err != nil {
		t.Fatal(err)
	}

	// Exactly-once across the swap: a retry of the last pre-swap
	// sequence number must replay the original (old-version) decision
	// byte-for-byte, even though the cohort is now on version 1.
	retry, err := reg.DecideCtx(context.Background(), "dev-swap", uint64(preN+shadowN), script[preN+shadowN-1])
	if err != nil {
		t.Fatal(err)
	}
	if !retry.Replayed {
		t.Error("pre-swap retry after cutover was re-decided, want replay")
	}
	if got := decisionKey(t, retry.Decision); got != preSwapLast {
		t.Errorf("replayed decision changed across cutover:\n  got  %s\n  want %s", got, preSwapLast)
	}

	// Post-cutover decisions serve — and journal — version 1.
	for i := preN + shadowN; i < preN+shadowN+postN; i++ {
		if out := decide(i); out.Degraded || out.Replayed {
			t.Fatalf("event %d: degraded=%v replayed=%v after cutover", i, out.Degraded, out.Replayed)
		}
	}
	entries := reg.Decisions("dev-swap", 0)
	var v0, v1 int
	for _, e := range entries {
		switch e.DBVersion {
		case 0:
			v0++
		case 1:
			v1++
		default:
			t.Fatalf("journal entry at unexpected version %d", e.DBVersion)
		}
	}
	if v1 != postN {
		t.Errorf("journal holds %d v1 entries, want %d", v1, postN)
	}

	if err := reg.RollbackDatabase("red"); err != nil {
		t.Fatal(err)
	}
	// Post-rollback the device resumes its retained pre-cutover manager
	// and serves version 0 again.
	for i := preN + shadowN + postN; i < len(script); i++ {
		if out := decide(i); out.Degraded {
			t.Fatalf("event %d degraded after rollback", i)
		}
	}
	tail := reg.Decisions("dev-swap", tailN)
	for _, e := range tail {
		if e.DBVersion != 0 {
			t.Errorf("seq %d journaled against v%d after rollback, want 0", e.Seq, e.DBVersion)
		}
	}
	if got, err := reg.Get("dev-swap"); err != nil || got.Stats.Decisions != int64(len(script)) {
		t.Errorf("device lost decisions across swap cycle: %+v, %v", got, err)
	}
}

// TestDeviceRegisteredDuringShadowWindow: a device registered while a
// candidate is installed must grow its shadow manager lazily and be
// counted in the window.
func TestDeviceRegisteredDuringShadowWindow(t *testing.T) {
	f := getFixture(t)
	reg, err := NewRegistry(fleetDatabases(t), 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.ProposeDatabase("red", versioned(f.base, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Register(DeviceParams{
		ID: "late-1", Database: "red", PRC: 0.5,
		Trigger: runtime.TriggerAlways, Initial: looseSpec(f.red),
	}); err != nil {
		t.Fatal(err)
	}
	for _, spec := range deviceScript(f.red, 55, 10) {
		if _, err := reg.Decide("late-1", spec); err != nil {
			t.Fatal(err)
		}
	}
	st, err := reg.EvolveStatus("red")
	if err != nil {
		t.Fatal(err)
	}
	if st.ShadowEvents != 10 {
		t.Errorf("late device contributed %d shadow events, want 10", st.ShadowEvents)
	}
}

// TestCohortsEvolveIndependently: a cutover on one cohort must not
// move devices of another.
func TestCohortsEvolveIndependently(t *testing.T) {
	f := getFixture(t)
	reg, err := NewRegistry(fleetDatabases(t), 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []DeviceParams{
		{ID: "red-1", Database: "red", PRC: 0.5, Initial: looseSpec(f.red)},
		{ID: "based-1", Database: "based", PRC: 0.5, Initial: looseSpec(f.base)},
	} {
		if _, err := reg.Register(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := reg.ProposeDatabase("red", versioned(f.base, 1)); err != nil {
		t.Fatal(err)
	}
	if err := reg.CutoverDatabase("red"); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"red-1", "based-1"} {
		if _, err := reg.Decide(id, looseSpec(f.red)); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range reg.Decisions("based-1", 0) {
		if e.DBVersion != 0 {
			t.Errorf("based cohort served v%d after red's cutover", e.DBVersion)
		}
	}
	for _, e := range reg.Decisions("red-1", 0) {
		if e.DBVersion != 1 {
			t.Errorf("red cohort served v%d after its cutover, want 1", e.DBVersion)
		}
	}
	if st, _ := reg.EvolveStatus("based"); st.ActiveVersion != 0 || st.HasCandidate || st.HasPrevious {
		t.Errorf("based cohort state disturbed: %+v", st)
	}
}

// TestHandoffRacesCutover is the cluster-consistency satellite: a
// device exported mid-shadow-window imports cleanly on a peer at the
// same active version (candidate and all), a bundle exported after a
// cutover the peer has not performed is rejected with ErrVersionSkew,
// and no sequence is ever answered twice across the move.
func TestHandoffRacesCutover(t *testing.T) {
	f := getFixture(t)
	regA, err := NewRegistry(fleetDatabases(t), 4)
	if err != nil {
		t.Fatal(err)
	}
	regB, err := NewRegistry(fleetDatabases(t), 4)
	if err != nil {
		t.Fatal(err)
	}
	params := DeviceParams{
		ID: "mover", Database: "red", PRC: 0.5,
		Trigger: runtime.TriggerOnViolation, Initial: looseSpec(f.red),
	}
	if _, err := regA.Register(params); err != nil {
		t.Fatal(err)
	}
	script := deviceScript(f.red, 909, 30)

	// Both nodes install the same candidate; A serves into the shadow
	// window, then exports mid-window.
	for _, reg := range []*Registry{regA, regB} {
		if err := reg.ProposeDatabase("red", versioned(f.base, 1)); err != nil {
			t.Fatal(err)
		}
	}
	var last DecideOutcome
	for i := 0; i < 10; i++ {
		if last, err = regA.DecideCtx(context.Background(), "mover", uint64(i+1), script[i]); err != nil {
			t.Fatal(err)
		}
	}
	st, err := regA.ExportRemove("mover")
	if err != nil {
		t.Fatal(err)
	}
	if st.DBVersion != 0 {
		t.Fatalf("mid-window bundle at v%d, want active v0", st.DBVersion)
	}
	if err := regB.ImportDevice(st); err != nil {
		t.Fatal(err)
	}

	// Exactly-once across the move: the exporter's last answered
	// sequence replays byte-identically on the importer.
	retry, err := regB.DecideCtx(context.Background(), "mover", 10, script[9])
	if err != nil {
		t.Fatal(err)
	}
	if !retry.Replayed {
		t.Error("imported device re-decided an already-answered sequence")
	}
	if got, want := decisionKey(t, retry.Decision), decisionKey(t, last.Decision); got != want {
		t.Errorf("replay across handoff changed:\n  got  %s\n  want %s", got, want)
	}

	// The imported device keeps feeding B's shadow window.
	before, _ := regB.EvolveStatus("red")
	for i := 10; i < 20; i++ {
		if _, err := regB.DecideCtx(context.Background(), "mover", uint64(i+1), script[i]); err != nil {
			t.Fatal(err)
		}
	}
	after, _ := regB.EvolveStatus("red")
	if after.ShadowEvents != before.ShadowEvents+10 {
		t.Errorf("imported device fed %d shadow events, want 10", after.ShadowEvents-before.ShadowEvents)
	}

	// B cuts over; A does not. A bundle exported from B (v1) must be
	// rejected by A (active v0) with ErrVersionSkew — and the failed
	// import must not leak a device.
	if err := regB.CutoverDatabase("red"); err != nil {
		t.Fatal(err)
	}
	if _, err := regB.DecideCtx(context.Background(), "mover", 21, script[20]); err != nil {
		t.Fatal(err)
	}
	stB, err := regB.ExportRemove("mover")
	if err != nil {
		t.Fatal(err)
	}
	if stB.DBVersion != 1 {
		t.Fatalf("post-cutover bundle at v%d, want 1", stB.DBVersion)
	}
	if err := regA.ImportDevice(stB); !errors.Is(err, ErrVersionSkew) {
		t.Fatalf("import of v1 bundle on v0 node: %v, want ErrVersionSkew", err)
	}
	if regA.Has("mover") {
		t.Error("rejected import leaked a device")
	}

	// Once A cuts over too, the same bundle imports and serving
	// resumes at the bundle's sequence horizon.
	if err := regA.CutoverDatabase("red"); err != nil {
		t.Fatal(err)
	}
	if err := regA.ImportDevice(stB); err != nil {
		t.Fatal(err)
	}
	if _, err := regA.DecideCtx(context.Background(), "mover", 21, script[20]); err != nil {
		t.Fatal(err)
	}
	if _, err := regA.DecideCtx(context.Background(), "mover", 20, script[19]); !errors.Is(err, ErrStaleSeq) {
		t.Errorf("stale pre-handoff sequence re-answered after import: %v, want ErrStaleSeq", err)
	}
	out, err := regA.DecideCtx(context.Background(), "mover", 22, script[21])
	if err != nil || out.Degraded {
		t.Fatalf("fresh decision after versioned handoff: %+v, %v", out, err)
	}
	// The adopted journal keeps the device's cross-version history
	// (v0 then v1); decisions made after the import are at v1.
	for _, e := range regA.Decisions("mover", 0) {
		want := uint64(1)
		if e.Seq <= 20 {
			want = 0 // decided before B's cutover
		}
		if e.DBVersion != want {
			t.Errorf("seq %d journaled at v%d, want v%d", e.Seq, e.DBVersion, want)
		}
	}
}

// TestEvolveMetricsRegistered: the evolve counters and gauges must be
// present (and correctly named) in the metrics export.
func TestEvolveMetricsRegistered(t *testing.T) {
	f := getFixture(t)
	reg, err := NewRegistry(fleetDatabases(t), 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.ProposeDatabase("red", versioned(f.base, 1)); err != nil {
		t.Fatal(err)
	}
	if err := reg.CutoverDatabase("red"); err != nil {
		t.Fatal(err)
	}
	if err := reg.RollbackDatabase("red"); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	reg.Metrics().WritePrometheus(&sb)
	dump := sb.String()
	for _, name := range []string{
		"clr_evolve_proposals_total",
		"clr_evolve_cutovers_total",
		"clr_evolve_adoptions_total",
		"clr_evolve_rollbacks_total",
		"clr_evolve_candidates_dropped_total",
		"clr_evolve_shadow_events_total",
		"clr_evolve_shadow_agreements_total",
		"clr_evolve_shadow_divergences_total",
		"clr_evolve_active_version",
		"clr_evolve_candidate_version",
	} {
		if !strings.Contains(dump, name) {
			t.Errorf("metric %s missing from export", name)
		}
	}
}

// TestExportSyncsToActiveVersion: devices converge onto a new active
// version lazily, on their next decision — so a device that never
// decides after a cutover would export a bundle stamped with the
// displaced version, which neither the importing peer nor this node's
// own re-import fallback could accept, dropping the device's state.
// The export path must converge the device first.
func TestExportSyncsToActiveVersion(t *testing.T) {
	f := getFixture(t)
	regA, err := NewRegistry(fleetDatabases(t), 4)
	if err != nil {
		t.Fatal(err)
	}
	regB, err := NewRegistry(fleetDatabases(t), 4)
	if err != nil {
		t.Fatal(err)
	}
	params := DeviceParams{
		ID: "lagger", Database: "red", PRC: 0.5,
		Trigger: runtime.TriggerOnViolation, Initial: looseSpec(f.red),
	}
	if _, err := regA.Register(params); err != nil {
		t.Fatal(err)
	}
	script := deviceScript(f.red, 515, 12)
	var last DecideOutcome
	for i := 0; i < 10; i++ {
		if last, err = regA.DecideCtx(context.Background(), "lagger", uint64(i+1), script[i]); err != nil {
			t.Fatal(err)
		}
	}

	// Both nodes cut over to the same v1; the device never decides
	// again on A, so only the export path can converge it.
	for _, reg := range []*Registry{regA, regB} {
		if err := reg.ProposeDatabase("red", versioned(f.base, 1)); err != nil {
			t.Fatal(err)
		}
		if err := reg.CutoverDatabase("red"); err != nil {
			t.Fatal(err)
		}
	}
	st, err := regA.ExportRemove("lagger")
	if err != nil {
		t.Fatal(err)
	}
	if st.DBVersion != 1 {
		t.Fatalf("post-cutover export stamped v%d, want active v1", st.DBVersion)
	}
	if st.DBFingerprint == 0 {
		t.Fatal("export carries no database fingerprint")
	}
	if err := regB.ImportDevice(st); err != nil {
		t.Fatalf("converged bundle rejected (device state would be dropped): %v", err)
	}

	// Exactly-once across the cutover-then-handoff: the pre-cutover
	// replay answer is preserved byte-identically, and serving resumes.
	retry, err := regB.DecideCtx(context.Background(), "lagger", 10, script[9])
	if err != nil {
		t.Fatal(err)
	}
	if !retry.Replayed {
		t.Error("imported device re-decided an already-answered sequence")
	}
	if got, want := decisionKey(t, retry.Decision), decisionKey(t, last.Decision); got != want {
		t.Errorf("replay across versioned handoff changed:\n  got  %s\n  want %s", got, want)
	}
	out, err := regB.DecideCtx(context.Background(), "lagger", 11, script[10])
	if err != nil || out.Degraded {
		t.Fatalf("fresh decision after converged handoff: %+v, %v", out, err)
	}
}

// TestImportRejectsDivergentSameVersion: each node's evolve worker
// proposes from its node-local journal, so two nodes can legitimately
// hold different databases both numbered active+1. A version-number
// check alone would accept a bundle whose point IDs refer to a
// different database; the content fingerprint must reject it.
func TestImportRejectsDivergentSameVersion(t *testing.T) {
	f := getFixture(t)
	regA, err := NewRegistry(fleetDatabases(t), 4)
	if err != nil {
		t.Fatal(err)
	}
	regB, err := NewRegistry(fleetDatabases(t), 4)
	if err != nil {
		t.Fatal(err)
	}
	// A evolves "red" to v1 with the stage-1 point set; B evolves it to
	// v1 with the original red point set: same number, divergent bytes.
	if err := regA.ProposeDatabase("red", versioned(f.base, 1)); err != nil {
		t.Fatal(err)
	}
	if err := regA.CutoverDatabase("red"); err != nil {
		t.Fatal(err)
	}
	if err := regB.ProposeDatabase("red", versioned(f.red, 1)); err != nil {
		t.Fatal(err)
	}
	if err := regB.CutoverDatabase("red"); err != nil {
		t.Fatal(err)
	}

	if _, err := regA.Register(DeviceParams{
		ID: "div", Database: "red", PRC: 0.5,
		Trigger: runtime.TriggerOnViolation, Initial: looseSpec(f.base),
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := regA.DecideCtx(context.Background(), "div", 1, looseSpec(f.base)); err != nil {
		t.Fatal(err)
	}
	st, err := regA.ExportRemove("div")
	if err != nil {
		t.Fatal(err)
	}
	if err := regB.ImportDevice(st); !errors.Is(err, ErrVersionSkew) {
		t.Fatalf("import of divergent same-version bundle: %v, want ErrVersionSkew", err)
	}
	if regB.Has("div") {
		t.Error("rejected import leaked a device")
	}
}

// TestAdoptDatabase pins the cluster catch-up primitive: an immediate
// install of a peer's exact database — dropping any local candidate,
// retaining the displaced version for rollback — with idempotent
// re-adoption and a refusal to move backwards.
func TestAdoptDatabase(t *testing.T) {
	f := getFixture(t)
	reg, err := NewRegistry(fleetDatabases(t), 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Register(DeviceParams{
		ID: "adoptee", Database: "red", PRC: 0.5,
		Trigger: runtime.TriggerOnViolation, Initial: looseSpec(f.red),
	}); err != nil {
		t.Fatal(err)
	}
	if err := reg.AdoptDatabase("nope", versioned(f.base, 2)); !errors.Is(err, ErrNoDatabase) {
		t.Errorf("adopt into unknown cohort: %v, want ErrNoDatabase", err)
	}

	// Adoption while a candidate is installed drops the candidate: its
	// shadow window judged a proposal the cluster has overtaken.
	if err := reg.ProposeDatabase("red", versioned(f.base, 1)); err != nil {
		t.Fatal(err)
	}
	if err := reg.AdoptDatabase("red", versioned(f.base, 2)); err != nil {
		t.Fatal(err)
	}
	st, err := reg.EvolveStatus("red")
	if err != nil {
		t.Fatal(err)
	}
	if st.ActiveVersion != 2 || st.HasCandidate || !st.HasPrevious || st.PreviousVersion != 0 {
		t.Fatalf("post-adopt status = %+v, want active v2, no candidate, previous v0", st)
	}

	// Re-adopting the active database is an idempotent no-op; adopting
	// an older version is an error.
	before := reg.evolveAdoptions.Value()
	if err := reg.AdoptDatabase("red", versioned(f.base, 2)); err != nil {
		t.Fatalf("re-adopt of the active database: %v", err)
	}
	if got := reg.evolveAdoptions.Value(); got != before {
		t.Errorf("no-op re-adopt counted: %d -> %d", before, got)
	}
	if err := reg.AdoptDatabase("red", versioned(f.base, 1)); !errors.Is(err, ErrCandidateVersion) {
		t.Errorf("adopt behind active: %v, want ErrCandidateVersion", err)
	}

	// Equal version, different content: the divergent-cutover tiebreak
	// path must install it.
	if err := reg.AdoptDatabase("red", versioned(f.red, 2)); err != nil {
		t.Fatalf("adopt of same-version divergent database: %v", err)
	}
	st2, _ := reg.EvolveStatus("red")
	if st2.ActiveVersion != 2 || st2.ActiveFingerprint == st.ActiveFingerprint {
		t.Fatalf("divergent adopt did not change content: %+v vs %+v", st2, st)
	}

	// Devices converge lazily onto the adopted version, exactly as
	// after a cutover.
	out, err := reg.DecideCtx(context.Background(), "adoptee", 1, looseSpec(f.red))
	if err != nil || out.Degraded {
		t.Fatalf("decision after adopt: %+v, %v", out, err)
	}
	for _, e := range reg.Decisions("adoptee", 0) {
		if e.DBVersion != 2 {
			t.Errorf("post-adopt decision journaled at v%d, want v2", e.DBVersion)
		}
	}

	// The displaced version is retained for one-step rollback.
	if err := reg.RollbackDatabase("red"); err != nil {
		t.Fatal(err)
	}
	st3, _ := reg.EvolveStatus("red")
	if st3.ActiveVersion != 2 || st3.ActiveFingerprint != st.ActiveFingerprint {
		t.Fatalf("rollback after adopt: %+v, want the previously adopted v2", st3)
	}
}

// TestStaleShadowScoreDoesNotPolluteWindow: a shadow score computed
// against a candidate that a concurrent re-propose has replaced must
// not count into the new candidate's freshly started window. The
// window object is keyed to its candidate, so the stale score's counts
// land in the discarded window (or nowhere), never in the fresh one.
func TestStaleShadowScoreDoesNotPolluteWindow(t *testing.T) {
	f := getFixture(t)
	reg, err := NewRegistry(fleetDatabases(t), 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Register(DeviceParams{
		ID: "stale", Database: "red", PRC: 0.5,
		Trigger: runtime.TriggerAlways, Initial: looseSpec(f.red),
	}); err != nil {
		t.Fatal(err)
	}
	if err := reg.ProposeDatabase("red", versioned(f.base, 1)); err != nil {
		t.Fatal(err)
	}
	script := deviceScript(f.red, 606, 6)
	for i, spec := range script[:5] {
		if _, err := reg.DecideCtx(context.Background(), "stale", uint64(i+1), spec); err != nil {
			t.Fatal(err)
		}
	}
	if st, _ := reg.EvolveStatus("red"); st.ShadowEvents != 5 {
		t.Fatalf("v1 window has %d events, want 5", st.ShadowEvents)
	}

	// Replace the candidate. The device still holds its v1 shadow
	// manager (it has not decided since), which is exactly the state of
	// a decision in flight across the re-propose.
	if err := reg.ProposeDatabase("red", versioned(f.base, 2)); err != nil {
		t.Fatal(err)
	}
	d, err := reg.lookup("stale")
	if err != nil {
		t.Fatal(err)
	}
	d.sem <- struct{}{}
	cur := d.mgr.Load().Current()
	reg.shadowScore(d, 99, script[5], runtime.Decision{From: cur, To: cur})
	d.release()
	if st, _ := reg.EvolveStatus("red"); st.ShadowEvents != 0 {
		t.Fatalf("stale score polluted the fresh window: %d events, want 0", st.ShadowEvents)
	}
}
