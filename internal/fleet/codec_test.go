package fleet

import (
	"bytes"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite binary-codec golden files")

// goldenRequest exercises every request field: replay seqs, seq 0, a
// repeated device, and non-integral floats.
func goldenRequest() []BatchEventJSON {
	return []BatchEventJSON{
		{Device: "sensor-001", Seq: 1, QoSSpecJSON: QoSSpecJSON{SMaxMs: 4.5, FMin: 0.97}},
		{Device: "sensor-001", Seq: 2, QoSSpecJSON: QoSSpecJSON{SMaxMs: 3.25, FMin: 0.99}},
		{Device: "gateway/эталон", Seq: 0, QoSSpecJSON: QoSSpecJSON{SMaxMs: 10, FMin: 0}},
	}
}

// goldenResponse exercises every result shape: a planful decision with
// -1 sentinels, a degraded stay-put, and error statuses.
func goldenResponse() []BatchResultJSON {
	return []BatchResultJSON{
		{Status: 200, Decision: &DecisionJSON{
			Device: "sensor-001", Seq: 1, From: 3, To: 7,
			Reconfigured: true, Violated: false,
			CostMs: 12.5, BinaryMigrationMs: 10.25, BitstreamMs: 2.25,
			MigratedTasks: 2, ReloadedPRRs: 1,
			Plan: []ActionJSON{
				{Kind: "copy-binary", Task: 4, PE: 1, PRR: -1, Bitstream: -1, CostMs: 10.25},
				{Kind: "load-bitstream", Task: -1, PE: -1, PRR: 0, Bitstream: 9, CostMs: 2.25},
				{Kind: "set-clr", Task: 4, PE: -1, PRR: -1, Bitstream: -1},
				{Kind: "reorder", Task: 5, PE: -1, PRR: -1, Bitstream: -1},
			},
		}},
		{Status: 200, Decision: &DecisionJSON{
			Device: "sensor-001", Seq: 2, From: 7, To: 7, Degraded: true,
		}},
		{Status: 404, Error: `no such device: "ghost"`},
		{Status: 409, Error: "stale seq: seq 1 behind 2"},
	}
}

// checkGolden encodes got and compares it byte-for-byte to the
// committed golden file (regenerate with `go test -run Golden -update`).
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s: encoding drifted from golden file (%d bytes vs %d); the wire format is frozen — bump the codec version instead", name, len(got), len(want))
	}
}

// TestBinaryCodecGolden freezes the wire bytes: encodings must match
// the committed golden files, decode back to the identical structs,
// and re-encode to the identical bytes.
func TestBinaryCodecGolden(t *testing.T) {
	req, err := AppendBatchRequest(nil, goldenRequest())
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "batch_request.clrb", req)

	resp, err := AppendBatchResponse(nil, goldenResponse())
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "batch_response.clrb", resp)

	// Round-trip: decode the frozen bytes, compare structs, re-encode.
	events, err := DecodeBatchRequest(req, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(events, goldenRequest()) {
		t.Errorf("request round-trip mismatch:\n got %+v\nwant %+v", events, goldenRequest())
	}
	req2, err := AppendBatchRequest(nil, events)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(req, req2) {
		t.Error("request re-encode is not byte-identical")
	}

	results, err := DecodeBatchResponse(resp, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(results, goldenResponse()) {
		t.Errorf("response round-trip mismatch:\n got %+v\nwant %+v", results, goldenResponse())
	}
	resp2, err := AppendBatchResponse(nil, results)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resp, resp2) {
		t.Error("response re-encode is not byte-identical")
	}
}

// TestBinaryCodecStability encodes the same values twice into reused
// buffers and expects identical bytes — the byte-stable contract the
// pooled scratch path depends on.
func TestBinaryCodecStability(t *testing.T) {
	buf := make([]byte, 0, 64)
	a, err := AppendBatchResponse(buf[:0], goldenResponse())
	if err != nil {
		t.Fatal(err)
	}
	first := append([]byte(nil), a...)
	b, err := AppendBatchResponse(a[:0], goldenResponse())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, b) {
		t.Error("encoding differs between runs over a reused buffer")
	}
}

// TestBinaryCodecRejects drives the decoder's failure edges: every
// malformed input must answer ErrBinCodec, never panic or succeed.
func TestBinaryCodecRejects(t *testing.T) {
	validReq, err := AppendBatchRequest(nil, goldenRequest())
	if err != nil {
		t.Fatal(err)
	}
	validResp, err := AppendBatchResponse(nil, goldenResponse())
	if err != nil {
		t.Fatal(err)
	}
	mutate := func(src []byte, off int, b byte) []byte {
		out := append([]byte(nil), src...)
		out[off] = b
		return out
	}
	cases := []struct {
		name string
		req  bool
		data []byte
	}{
		{"empty", true, nil},
		{"bad magic", true, mutate(validReq, 0, 'X')},
		{"bad version", true, mutate(validReq, 4, 99)},
		{"response kind on request decoder", true, validResp},
		{"request kind on response decoder", false, validReq},
		{"truncated", true, validReq[:len(validReq)-1]},
		{"trailing byte", true, append(append([]byte(nil), validReq...), 0)},
		{"forged count", true, mutate(validReq, 6, 0xff)},
		{"unknown flags", false, func() []byte {
			// Flags byte of the first decision: header(10) + status(2) +
			// device str(2+10) + seq(8) + from/to(8).
			return mutate(validResp, 10+2+2+10+8+8, 0xf0)
		}()},
		{"truncated response", false, validResp[:len(validResp)-3]},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var derr error
			if tc.req {
				_, derr = DecodeBatchRequest(tc.data, nil)
			} else {
				_, derr = DecodeBatchResponse(tc.data, nil)
			}
			if !errors.Is(derr, ErrBinCodec) {
				t.Errorf("want ErrBinCodec, got %v", derr)
			}
		})
	}

	t.Run("encode rejects unknown action kind", func(t *testing.T) {
		_, err := AppendBatchResponse(nil, []BatchResultJSON{{Status: 200, Decision: &DecisionJSON{
			Plan: []ActionJSON{{Kind: "warp-drive"}},
		}}})
		if !errors.Is(err, ErrBinCodec) {
			t.Errorf("want ErrBinCodec, got %v", err)
		}
	})
	t.Run("encode rejects 200 without decision", func(t *testing.T) {
		_, err := AppendBatchResponse(nil, []BatchResultJSON{{Status: 200}})
		if !errors.Is(err, ErrBinCodec) {
			t.Errorf("want ErrBinCodec, got %v", err)
		}
	})
}

// FuzzBinaryCodec feeds arbitrary bytes to both decoders: they must
// never panic, and any input that decodes must re-encode to the exact
// same bytes (the canonical-encoding property).
func FuzzBinaryCodec(f *testing.F) {
	if seed, err := AppendBatchRequest(nil, goldenRequest()); err == nil {
		f.Add(seed)
	}
	if seed, err := AppendBatchResponse(nil, goldenResponse()); err == nil {
		f.Add(seed)
	}
	f.Add([]byte("CLRB"))
	f.Add([]byte{'C', 'L', 'R', 'B', 1, 1, 0, 0, 0, 0})
	f.Add([]byte{'C', 'L', 'R', 'B', 1, 2, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		if events, err := DecodeBatchRequest(data, nil); err == nil {
			out, err := AppendBatchRequest(nil, events)
			if err != nil {
				t.Fatalf("re-encoding decoded request: %v", err)
			}
			if !bytes.Equal(out, data) {
				t.Fatalf("request decode/encode not canonical:\n in  %x\n out %x", data, out)
			}
		}
		if results, err := DecodeBatchResponse(data, nil); err == nil {
			out, err := AppendBatchResponse(nil, results)
			if err != nil {
				t.Fatalf("re-encoding decoded response: %v", err)
			}
			if !bytes.Equal(out, data) {
				t.Fatalf("response decode/encode not canonical:\n in  %x\n out %x", data, out)
			}
		}
	})
}
