package fleet

// Per-device state handoff for the cluster layer: when the
// consistent-hash ring moves a device to another node, its owner
// exports a DeviceState bundle — registration parameters, decision
// journal, exactly-once replay cache — and the new owner imports it by
// replaying the journal through a freshly booted manager. Replay (not
// snapshot copy) is the restore mechanism: each journal entry advances
// the manager exactly as the original decision did, so the migrated
// device keeps deciding byte-identically and never answers a sequence
// number twice.

import (
	"fmt"
	"runtime/pprof"
	"sort"
	"time"

	"clrdse/internal/obs"
	"clrdse/internal/runtime"
)

// DeviceState is one device's complete serving state, the unit of
// cluster handoff. It is a node-to-node wire type (JSON), not part of
// the public v1 device API.
type DeviceState struct {
	// Params is the device's original registration.
	Params DeviceParams `json:"params"`
	// Point is the stored design-point ID in force; Events is the
	// manager's processed-event count (the AuRA episode clock).
	Point  int `json:"point"`
	Events int `json:"events"`
	// DBVersion is the database version the device was serving from
	// when exported (Point is only meaningful within it). The importer
	// must be active on the same version — the cluster agrees on
	// versions before cutover — or the import fails with ErrVersionSkew
	// and the exporter keeps the device.
	DBVersion uint64 `json:"db_version,omitempty"`
	// DBFingerprint is the content fingerprint of that database (see
	// NamedDatabase.Fingerprint). Version numbers alone cannot
	// distinguish two databases independently evolved to the same
	// number on different nodes, so the importer requires the
	// fingerprint to match its active database too. Zero marks a
	// bundle from a build without fingerprints (version check only).
	DBFingerprint uint64 `json:"db_fingerprint,omitempty"`
	// LastSpec/HaveSpec carry the device's most recent observed QoS
	// specification — the boot spec for managers rebuilt by a later
	// version migration on the importing node.
	LastSpec runtime.QoSSpec `json:"last_spec"`
	HaveSpec bool            `json:"have_spec,omitempty"`
	// Stats is the cumulative decision history (Degraded included).
	Stats DeviceStats `json:"stats"`
	// DegradedNow marks a device whose latest answer was degraded, so
	// the importing node's degraded-device gauge and /readyz fraction
	// stay truthful across the move.
	DegradedNow bool `json:"degraded_now,omitempty"`
	// RegisteredAt is the original registration instant.
	RegisteredAt time.Time `json:"registered_at"`
	// LastSeq/LastDec/HaveLast are the exactly-once replay cache: a
	// retry of LastSeq after the move is answered from here, unchanged.
	LastSeq  uint64            `json:"last_seq"`
	HaveLast bool              `json:"have_last"`
	LastDec  *runtime.Decision `json:"last_dec,omitempty"`
	// Journal is the device's decision history from the exporting
	// node's journal, oldest first. The importer replays it to rebuild
	// manager state and adopts the entries into its own journal, so
	// the flight record follows the device across the ring.
	Journal []obs.Entry `json:"journal,omitempty"`
}

// DeviceIDs lists every registered device ID, sorted.
func (r *Registry) DeviceIDs() []string {
	var out []string
	for _, sh := range r.shards {
		sh.mu.RLock()
		for id := range sh.devices {
			out = append(out, id)
		}
		sh.mu.RUnlock()
	}
	sort.Strings(out)
	return out
}

// exportState snapshots the device's full state. The device semaphore
// is held for the snapshot — including the degraded atomics, which a
// concurrent degrade() can bump without the semaphore — so the replay
// cache, stats, manager state, journal and degraded accounting are
// mutually consistent (the decide path journals and clears the
// degraded flag before releasing the semaphore). With tombstone set
// the device is additionally marked removed while the semaphore is
// still held: a decide that resolved the device before it was
// unpublished then fails with ErrNoDevice after its acquire instead
// of committing to the orphaned object behind the export's back.
func (r *Registry) exportState(d *device, tombstone bool) *DeviceState {
	d.sem <- struct{}{}
	// Converge onto the cohort's active version before snapshotting:
	// devices migrate lazily (syncVersion otherwise runs only on the
	// decide path), so a device that has not decided since a cutover
	// would export a bundle stamped with the displaced version — which
	// no peer on the new version, nor this node's own re-import
	// fallback, could accept, dropping the device's state entirely.
	// Syncing under the held semaphore makes the bundle's version the
	// cohort's active version by construction.
	r.syncVersion(d)
	db := d.db.Load()
	st := &DeviceState{
		Params:        d.params,
		Stats:         d.stats,
		RegisteredAt:  d.regAt,
		LastSeq:       d.lastSeq,
		HaveLast:      d.haveLast,
		LastSpec:      d.lastSpec,
		HaveSpec:      d.haveSpec,
		DBVersion:     db.DB.Version,
		DBFingerprint: db.fp,
	}
	if d.haveLast {
		dec := d.lastDec
		st.LastDec = &dec
	}
	mgr := d.mgr.Load()
	st.Point = mgr.Current()
	st.Events = mgr.Events()
	for _, e := range r.shardFor(d.id).journal.Snapshot() {
		if e.Device == d.id {
			st.Journal = append(st.Journal, e)
		}
	}
	st.Stats.Degraded = d.degradedN.Load()
	st.DegradedNow = d.degraded.Load()
	if tombstone {
		d.removed.Store(true)
	}
	d.release()
	return st
}

// ExportDevice snapshots the device's handoff bundle without removing
// it — the read side of replication and diagnostics.
func (r *Registry) ExportDevice(id string) (*DeviceState, error) {
	d, err := r.lookup(id)
	if err != nil {
		return nil, err
	}
	return r.exportState(d, false), nil
}

// ExportRemove atomically deregisters the device and returns its
// handoff bundle. The device is unpublished from the registry before
// the snapshot, the snapshot waits for any in-flight decision to
// finish, and the orphaned object is tombstoned so a decide that
// resolved it before the unpublish fails with ErrNoDevice instead of
// committing after the export — the bundle therefore reflects every
// decision this node ever acknowledged for the device, and no later
// ones exist.
func (r *Registry) ExportRemove(id string) (*DeviceState, error) {
	sh := r.shardFor(id)
	sh.mu.Lock()
	d, ok := sh.devices[id]
	if ok {
		delete(sh.devices, id)
	}
	sh.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoDevice, id)
	}
	st := r.exportState(d, true)
	r.devices.Add(-1)
	// Decrement from the bundle's own snapshot, not a re-read of the
	// atomic: a degrade racing the export cannot skew the gauge away
	// from what the importer will add back.
	if st.DegradedNow {
		r.degradedDev.Add(-1)
	}
	return st, nil
}

// ImportDevice installs a migrated device from its handoff bundle.
// The manager is booted fresh on the importer's active database —
// which must be the version the bundle was exported at (ErrVersionSkew
// otherwise; Point and the journal's transitions are only meaningful
// within one version) — the journal is replayed through it (each
// non-degraded same-version entry re-applies its transition and
// re-teaches the agent the recorded reward), and the snapshot
// point/event-clock then corrects for any history the exporting
// journal's ring had already overwritten. The replay cache and journal
// entries are adopted as-is, so a retried sequence number is answered
// from the cache and the device's whole decision history remains
// explainable from this node's /debug/decisions.
func (r *Registry) ImportDevice(st *DeviceState) error {
	if st == nil {
		return fmt.Errorf("fleet: nil device state")
	}
	p := st.Params
	if err := p.validate(); err != nil {
		return err
	}
	dbst, ok := r.dbs[p.Database]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoDatabase, p.Database)
	}
	db := dbst.active.Load()
	if st.DBVersion != db.DB.Version {
		return fmt.Errorf("%w: %q bundle v%d, active v%d", ErrVersionSkew, p.ID, st.DBVersion, db.DB.Version)
	}
	if st.DBFingerprint != 0 && st.DBFingerprint != db.fp {
		// Same version number, different content: the exporting node
		// evolved a divergent database to this number. Replaying the
		// bundle's point IDs against this database would silently
		// corrupt the migrated state.
		return fmt.Errorf("%w: %q bundle fingerprint %016x, active %016x at v%d",
			ErrVersionSkew, p.ID, st.DBFingerprint, db.fp, db.DB.Version)
	}
	mgr, err := newManagerOn(db, p, p.Initial)
	if err != nil {
		return err
	}
	for _, e := range st.Journal {
		if e.Degraded || e.DBVersion != st.DBVersion {
			// Degraded answers never advanced manager state; entries
			// decided under an earlier database version reference point
			// IDs that do not exist in this one — the Restore below
			// lands the device on its snapshot state regardless.
			continue
		}
		if err := mgr.Replay(e.To, e.DRCMs); err != nil {
			return fmt.Errorf("fleet: import %q: journal replay: %w", p.ID, err)
		}
	}
	if err := mgr.Restore(st.Point, st.Events); err != nil {
		return fmt.Errorf("fleet: import %q: %w", p.ID, err)
	}
	d := &device{
		sem: make(chan struct{}, 1),
		id:  p.ID, dbName: p.Database, state: dbst,
		params:  p,
		stats:   st.Stats,
		regAt:   st.RegisteredAt,
		plabels: pprof.Labels("device", p.ID, "stage", "decide"),
	}
	d.db.Store(db)
	d.mgr.Store(mgr)
	d.lastSpec, d.haveSpec = st.LastSpec, st.HaveSpec
	d.lastSeq, d.haveLast = st.LastSeq, st.HaveLast
	if st.LastDec != nil {
		d.lastDec = *st.LastDec
	}
	d.degradedN.Store(st.Stats.Degraded)
	if st.DegradedNow {
		d.degraded.Store(true)
	}

	sh := r.shardFor(p.ID)
	sh.mu.Lock()
	if _, dup := sh.devices[p.ID]; dup {
		sh.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrDeviceExists, p.ID)
	}
	sh.devices[p.ID] = d
	sh.mu.Unlock()

	// Adopt the travelled journal entries verbatim: they were already
	// counted as explained decisions on the node that decided them, so
	// they bypass the explained counter and stage histograms here.
	for i := range st.Journal {
		e := st.Journal[i]
		sh.journal.Append(&e)
	}
	r.devices.Add(1)
	if st.DegradedNow {
		r.degradedDev.Add(1)
	}
	return nil
}
