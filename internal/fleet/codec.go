package fleet

// Compact binary codec for the batch decide endpoint
// (Content-Type: application/x-clr-bin). The JSON v1 wire stays the
// contract of record — this encoding carries the exact same batch
// structs, length-prefixed and versioned, for callers that cannot
// afford JSON on the hot path.
//
// Framing (all integers big-endian):
//
//	header   = magic "CLRB" | version u8 (=1) | kind u8 | count u32
//	kind     = 0x01 request | 0x02 response
//	request  = header | count × event
//	event    = str device | u64 seq | f64 s_max_ms | f64 f_min
//	response = header | count × result
//	result   = u16 status
//	           status == 200 → decision
//	           else          → str error
//	decision = str device | u64 seq | u32 from | u32 to | u8 flags
//	           | f64 cost_ms | f64 binary_migration_ms | f64 bitstream_ms
//	           | u32 migrated_tasks | u32 reloaded_prrs
//	           | u32 plan_len | plan_len × action
//	flags    = bit0 reconfigured | bit1 violated | bit2 degraded
//	action   = u8 kind | u32 task | u32 pe | u32 prr | u32 bitstream
//	           | f64 cost_ms
//	str      = u16 len | len bytes (UTF-8, not NUL-terminated)
//
// Signed ints (from/to, action fields — -1 is a valid sentinel) ride
// as two's-complement u32; floats as IEEE-754 bits, so every value
// round-trips exactly. The encoding is canonical: a byte stream either
// fails to decode or re-encodes to the identical bytes (decoders
// reject trailing data, unknown versions/kinds/statuses/action kinds,
// and length prefixes that overrun the buffer) — the property
// FuzzBinaryCodec locks in. Version bumps on any layout change.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

const (
	// binVersion is the codec version byte; bump on any layout change.
	binVersion = 1

	binKindRequest  = 0x01
	binKindResponse = 0x02

	// BinContentType is the batch endpoint's binary media type.
	BinContentType = "application/x-clr-bin"
)

var binMagic = [4]byte{'C', 'L', 'R', 'B'}

// ErrBinCodec tags every decode failure of the binary batch codec.
var ErrBinCodec = errors.New("clr-bin codec")

// binActionKinds maps the action-kind byte to ActionJSON.Kind. The
// byte values match mapping.ActionKind's iota order but are a wire
// contract of their own: reordering this table is a version bump.
var binActionKinds = []string{"copy-binary", "load-bitstream", "set-clr", "reorder"}

func binActionKindByte(kind string) (byte, error) {
	for i, k := range binActionKinds {
		if k == kind {
			return byte(i), nil
		}
	}
	return 0, fmt.Errorf("%w: unknown action kind %q", ErrBinCodec, kind)
}

func appendBinHeader(dst []byte, kind byte, count int) []byte {
	dst = append(dst, binMagic[:]...)
	dst = append(dst, binVersion, kind)
	return binary.BigEndian.AppendUint32(dst, uint32(count))
}

func appendBinStr(dst []byte, s string) []byte {
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(s)))
	return append(dst, s...)
}

func appendBinF64(dst []byte, f float64) []byte {
	return binary.BigEndian.AppendUint64(dst, math.Float64bits(f))
}

// AppendBatchRequest encodes a batch request onto dst (pooled callers
// pass dst[:0] to reuse the buffer). It fails only on values the
// framing cannot carry (device IDs over 64 KiB).
func AppendBatchRequest(dst []byte, events []BatchEventJSON) ([]byte, error) {
	dst = appendBinHeader(dst, binKindRequest, len(events))
	for i := range events {
		if len(events[i].Device) > math.MaxUint16 {
			return nil, fmt.Errorf("%w: device ID %d bytes long", ErrBinCodec, len(events[i].Device))
		}
		dst = appendBinStr(dst, events[i].Device)
		dst = binary.BigEndian.AppendUint64(dst, events[i].Seq)
		dst = appendBinF64(dst, events[i].SMaxMs)
		dst = appendBinF64(dst, events[i].FMin)
	}
	return dst, nil
}

// AppendBatchResponse encodes a batch response onto dst.
func AppendBatchResponse(dst []byte, results []BatchResultJSON) ([]byte, error) {
	dst = appendBinHeader(dst, binKindResponse, len(results))
	for i := range results {
		res := &results[i]
		if res.Status < 0 || res.Status > math.MaxUint16 {
			return nil, fmt.Errorf("%w: status %d out of range", ErrBinCodec, res.Status)
		}
		dst = binary.BigEndian.AppendUint16(dst, uint16(res.Status))
		if res.Status == 200 {
			if res.Decision == nil {
				return nil, fmt.Errorf("%w: status 200 without decision", ErrBinCodec)
			}
			var err error
			if dst, err = appendBinDecision(dst, res.Decision); err != nil {
				return nil, err
			}
			continue
		}
		if len(res.Error) > math.MaxUint16 {
			return nil, fmt.Errorf("%w: error %d bytes long", ErrBinCodec, len(res.Error))
		}
		dst = appendBinStr(dst, res.Error)
	}
	return dst, nil
}

func appendBinDecision(dst []byte, d *DecisionJSON) ([]byte, error) {
	if len(d.Device) > math.MaxUint16 {
		return nil, fmt.Errorf("%w: device ID %d bytes long", ErrBinCodec, len(d.Device))
	}
	dst = appendBinStr(dst, d.Device)
	dst = binary.BigEndian.AppendUint64(dst, d.Seq)
	dst = binary.BigEndian.AppendUint32(dst, uint32(int32(d.From)))
	dst = binary.BigEndian.AppendUint32(dst, uint32(int32(d.To)))
	var flags byte
	if d.Reconfigured {
		flags |= 1 << 0
	}
	if d.Violated {
		flags |= 1 << 1
	}
	if d.Degraded {
		flags |= 1 << 2
	}
	dst = append(dst, flags)
	dst = appendBinF64(dst, d.CostMs)
	dst = appendBinF64(dst, d.BinaryMigrationMs)
	dst = appendBinF64(dst, d.BitstreamMs)
	dst = binary.BigEndian.AppendUint32(dst, uint32(int32(d.MigratedTasks)))
	dst = binary.BigEndian.AppendUint32(dst, uint32(int32(d.ReloadedPRRs)))
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(d.Plan)))
	for _, a := range d.Plan {
		kb, err := binActionKindByte(a.Kind)
		if err != nil {
			return nil, err
		}
		dst = append(dst, kb)
		dst = binary.BigEndian.AppendUint32(dst, uint32(int32(a.Task)))
		dst = binary.BigEndian.AppendUint32(dst, uint32(int32(a.PE)))
		dst = binary.BigEndian.AppendUint32(dst, uint32(int32(a.PRR)))
		dst = binary.BigEndian.AppendUint32(dst, uint32(int32(a.Bitstream)))
		dst = appendBinF64(dst, a.CostMs)
	}
	return dst, nil
}

// binReader walks an untrusted buffer with bounds checks; every read
// fails cleanly at the end of input (fuzz contract: never panic).
type binReader struct {
	data []byte
	off  int
}

func (r *binReader) remaining() int { return len(r.data) - r.off }

func (r *binReader) u8() (byte, error) {
	if r.remaining() < 1 {
		return 0, fmt.Errorf("%w: truncated at byte %d", ErrBinCodec, r.off)
	}
	v := r.data[r.off]
	r.off++
	return v, nil
}

func (r *binReader) u16() (uint16, error) {
	if r.remaining() < 2 {
		return 0, fmt.Errorf("%w: truncated at byte %d", ErrBinCodec, r.off)
	}
	v := binary.BigEndian.Uint16(r.data[r.off:])
	r.off += 2
	return v, nil
}

func (r *binReader) u32() (uint32, error) {
	if r.remaining() < 4 {
		return 0, fmt.Errorf("%w: truncated at byte %d", ErrBinCodec, r.off)
	}
	v := binary.BigEndian.Uint32(r.data[r.off:])
	r.off += 4
	return v, nil
}

func (r *binReader) u64() (uint64, error) {
	if r.remaining() < 8 {
		return 0, fmt.Errorf("%w: truncated at byte %d", ErrBinCodec, r.off)
	}
	v := binary.BigEndian.Uint64(r.data[r.off:])
	r.off += 8
	return v, nil
}

func (r *binReader) f64() (float64, error) {
	bits, err := r.u64()
	return math.Float64frombits(bits), err
}

func (r *binReader) str() (string, error) { return r.strPrev("") }

// strPrev is str reusing prev's allocation when the bytes match: on a
// steady decode stream into pooled targets the IDs repeat, and the
// comparison below is alloc-free (the compiler elides the conversion).
func (r *binReader) strPrev(prev string) (string, error) {
	n, err := r.u16()
	if err != nil {
		return "", err
	}
	if r.remaining() < int(n) {
		return "", fmt.Errorf("%w: string of %d bytes overruns input at byte %d", ErrBinCodec, n, r.off)
	}
	b := r.data[r.off : r.off+int(n)]
	r.off += int(n)
	if string(b) == prev {
		return prev, nil
	}
	return string(b), nil
}

// header validates the magic/version/kind prologue and returns count.
func (r *binReader) header(wantKind byte) (int, error) {
	if r.remaining() < len(binMagic) || [4]byte(r.data[r.off:r.off+4]) != binMagic {
		return 0, fmt.Errorf("%w: bad magic", ErrBinCodec)
	}
	r.off += len(binMagic)
	v, err := r.u8()
	if err != nil {
		return 0, err
	}
	if v != binVersion {
		return 0, fmt.Errorf("%w: version %d (want %d)", ErrBinCodec, v, binVersion)
	}
	k, err := r.u8()
	if err != nil {
		return 0, err
	}
	if k != wantKind {
		return 0, fmt.Errorf("%w: kind 0x%02x (want 0x%02x)", ErrBinCodec, k, wantKind)
	}
	n, err := r.u32()
	if err != nil {
		return 0, err
	}
	return int(n), nil
}

// trailing rejects bytes past the last decoded value — required for
// the codec's canonical-bytes property.
func (r *binReader) trailing() error {
	if r.remaining() != 0 {
		return fmt.Errorf("%w: %d trailing bytes", ErrBinCodec, r.remaining())
	}
	return nil
}

// grow allocates count result slots, but only once the buffer has
// proven it holds at least minPer bytes per slot — a forged count
// cannot make the decoder allocate more than the input's own size.
func (r *binReader) grow(count, minPer int) error {
	if count < 0 || r.remaining() < count*minPer {
		return fmt.Errorf("%w: count %d overruns %d-byte input", ErrBinCodec, count, len(r.data))
	}
	return nil
}

// DecodeBatchRequest decodes a binary batch request, appending onto
// dst (pooled callers pass dst[:0] — device IDs matching the recycled
// slots are reused instead of re-allocated). Arbitrary input never
// panics; trailing bytes are rejected.
func DecodeBatchRequest(data []byte, dst []BatchEventJSON) ([]BatchEventJSON, error) {
	r := &binReader{data: data}
	count, err := r.header(binKindRequest)
	if err != nil {
		return nil, err
	}
	const minEvent = 2 + 8 + 8 + 8 // empty device + seq + two floats
	if err := r.grow(count, minEvent); err != nil {
		return nil, err
	}
	spare := dst[len(dst):cap(dst)] // recycled slots from a previous decode
	for i := 0; i < count; i++ {
		var ev BatchEventJSON
		var prev string
		if i < len(spare) {
			prev = spare[i].Device
		}
		if ev.Device, err = r.strPrev(prev); err != nil {
			return nil, err
		}
		if ev.Seq, err = r.u64(); err != nil {
			return nil, err
		}
		if ev.SMaxMs, err = r.f64(); err != nil {
			return nil, err
		}
		if ev.FMin, err = r.f64(); err != nil {
			return nil, err
		}
		dst = append(dst, ev)
	}
	if err := r.trailing(); err != nil {
		return nil, err
	}
	return dst, nil
}

// DecodeBatchResponse decodes a binary batch response, appending onto
// dst. Arbitrary input never panics; trailing bytes are rejected.
//
// Pooled callers pass dst[:0]: decision structs (and their plan
// backing arrays) sitting in the recycled capacity are reused and
// fully reset, so a steady decode stream stops allocating — which
// also means results from an earlier decode must not be retained
// across a decode into the same backing array.
func DecodeBatchResponse(data []byte, dst []BatchResultJSON) ([]BatchResultJSON, error) {
	r := &binReader{data: data}
	count, err := r.header(binKindResponse)
	if err != nil {
		return nil, err
	}
	const minResult = 2 + 2 // status + empty error string
	if err := r.grow(count, minResult); err != nil {
		return nil, err
	}
	spare := dst[len(dst):cap(dst)] // recycled slots from a previous decode
	for i := 0; i < count; i++ {
		var res BatchResultJSON
		st, err := r.u16()
		if err != nil {
			return nil, err
		}
		res.Status = int(st)
		if res.Status == 200 {
			// The append below lands exactly on spare[i], so its old
			// decision is read here and never observable afterwards.
			var recycled *DecisionJSON
			if i < len(spare) {
				recycled = spare[i].Decision
			}
			if res.Decision, err = r.decision(recycled); err != nil {
				return nil, err
			}
		} else {
			if res.Error, err = r.str(); err != nil {
				return nil, err
			}
		}
		dst = append(dst, res)
	}
	if err := r.trailing(); err != nil {
		return nil, err
	}
	return dst, nil
}

// decision decodes one decision, into d when non-nil (every field is
// overwritten and the plan backing array is reused).
func (r *binReader) decision(d *DecisionJSON) (*DecisionJSON, error) {
	var prevDev string
	if d == nil {
		d = &DecisionJSON{}
	} else {
		prevDev = d.Device
		*d = DecisionJSON{Plan: d.Plan[:0]}
	}
	var err error
	if d.Device, err = r.strPrev(prevDev); err != nil {
		return nil, err
	}
	if d.Seq, err = r.u64(); err != nil {
		return nil, err
	}
	from, err := r.u32()
	if err != nil {
		return nil, err
	}
	to, err := r.u32()
	if err != nil {
		return nil, err
	}
	d.From, d.To = int(int32(from)), int(int32(to))
	flags, err := r.u8()
	if err != nil {
		return nil, err
	}
	if flags&^(1<<0|1<<1|1<<2) != 0 {
		return nil, fmt.Errorf("%w: unknown decision flags 0x%02x", ErrBinCodec, flags)
	}
	d.Reconfigured = flags&(1<<0) != 0
	d.Violated = flags&(1<<1) != 0
	d.Degraded = flags&(1<<2) != 0
	if d.CostMs, err = r.f64(); err != nil {
		return nil, err
	}
	if d.BinaryMigrationMs, err = r.f64(); err != nil {
		return nil, err
	}
	if d.BitstreamMs, err = r.f64(); err != nil {
		return nil, err
	}
	mt, err := r.u32()
	if err != nil {
		return nil, err
	}
	rp, err := r.u32()
	if err != nil {
		return nil, err
	}
	d.MigratedTasks, d.ReloadedPRRs = int(int32(mt)), int(int32(rp))
	planLen, err := r.u32()
	if err != nil {
		return nil, err
	}
	const minAction = 1 + 4*4 + 8
	if err := r.grow(int(planLen), minAction); err != nil {
		return nil, err
	}
	for j := 0; j < int(planLen); j++ {
		var a ActionJSON
		kb, err := r.u8()
		if err != nil {
			return nil, err
		}
		if int(kb) >= len(binActionKinds) {
			return nil, fmt.Errorf("%w: unknown action kind 0x%02x", ErrBinCodec, kb)
		}
		a.Kind = binActionKinds[kb]
		task, err := r.u32()
		if err != nil {
			return nil, err
		}
		pe, err := r.u32()
		if err != nil {
			return nil, err
		}
		prr, err := r.u32()
		if err != nil {
			return nil, err
		}
		bs, err := r.u32()
		if err != nil {
			return nil, err
		}
		a.Task, a.PE, a.PRR, a.Bitstream = int(int32(task)), int(int32(pe)), int(int32(prr)), int(int32(bs))
		if a.CostMs, err = r.f64(); err != nil {
			return nil, err
		}
		d.Plan = append(d.Plan, a)
	}
	return d, nil
}
