// Package client is the resilient HTTP client for the fleet decision
// service: retries with capped exponential backoff and deterministic
// jitter, a per-attempt deadline, a circuit breaker per endpoint, and
// sequence-numbered QoS events so retries are answered exactly once by
// the server's replay cache. It is what device firmware should look
// like from the fleet's point of view — the run-time substrate of the
// paper's cross-layer argument, made fault-tolerant itself.
package client

import (
	"time"

	"clrdse/internal/rng"
)

// Backoff is a capped exponential backoff with multiplicative jitter.
type Backoff struct {
	// Base is the attempt-0 delay; attempt k waits min(Max, Base<<k).
	Base time.Duration
	// Max caps the un-jittered delay.
	Max time.Duration
	// Jitter in [0,1] scales each delay by a factor drawn uniformly
	// from [1-Jitter, 1]; 0 disables jitter. Jitter decorrelates a
	// fleet of devices retrying against the same failed endpoint.
	Jitter float64
}

// DefaultBackoff is the client's default policy: 50 ms doubling to a
// 2 s cap with 50% jitter.
func DefaultBackoff() Backoff {
	return Backoff{Base: 50 * time.Millisecond, Max: 2 * time.Second, Jitter: 0.5}
}

// Delay returns the wait before retry attempt k (0-based), drawing
// jitter from src. A nil src disables jitter. The result is always in
// [(1-Jitter)*d, d] where d = min(Max, Base<<k).
func (b Backoff) Delay(attempt int, src *rng.Source) time.Duration {
	if b.Base <= 0 {
		return 0
	}
	d := b.Base
	for i := 0; i < attempt; i++ {
		d *= 2
		if b.Max > 0 && d >= b.Max {
			d = b.Max
			break
		}
	}
	if b.Max > 0 && d > b.Max {
		d = b.Max
	}
	if b.Jitter > 0 && src != nil {
		d = time.Duration(float64(d) * (1 - b.Jitter*src.Float64()))
	}
	return d
}
