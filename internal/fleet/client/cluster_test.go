package client

// Cluster-mode client coverage: the ownership mirror (RefreshRing /
// routeBase), redirect-following without burning retry or breaker
// budget (noteRedirect), per-node breakers and answer attribution,
// and the full endpoint surface against a real in-process cluster.

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"clrdse/internal/cluster"
	"clrdse/internal/fleet"
	"clrdse/internal/fleet/fleettest"
)

func clusterClient(urls []string) *Client {
	return New(Config{
		Targets:        urls,
		MaxAttempts:    4,
		AttemptTimeout: 5 * time.Second,
		JitterSeed:     9,
	})
}

func registerOne(t *testing.T, c *Client, id string) fleet.QoSSpecJSON {
	t.Helper()
	dbs := fleettest.Databases(t)
	boot := fleettest.LooseSpec(dbs[0].DB)
	_, err := c.Register(context.Background(), fleet.RegisterRequest{
		ID:       id,
		Database: dbs[0].Name,
		PRC:      0.5,
		Trigger:  "on-violation",
		Initial:  fleet.QoSSpecJSON{SMaxMs: boot.SMaxMs, FMin: boot.FMin},
	})
	if err != nil {
		t.Fatalf("register %s: %v", id, err)
	}
	return fleet.QoSSpecJSON{SMaxMs: boot.SMaxMs, FMin: boot.FMin}
}

func TestClientClusterEndToEnd(t *testing.T) {
	clus, err := fleettest.NewCluster(fleettest.ClusterOptions{TraceSeed: 51})
	if err != nil {
		t.Fatal(err)
	}
	defer clus.Close()

	c := clusterClient(clus.URLs())
	ctx := context.Background()
	if err := c.RefreshRing(ctx); err != nil {
		t.Fatalf("RefreshRing: %v", err)
	}

	dbs, err := c.Databases(ctx)
	if err != nil || len(dbs) == 0 {
		t.Fatalf("Databases = %v, %v", dbs, err)
	}

	// Enough devices that the ring spreads them over several nodes.
	const n = 8
	specs := make([]fleet.QoSSpecJSON, n)
	for d := 0; d < n; d++ {
		specs[d] = registerOne(t, c, fmt.Sprintf("cli-%d", d))
	}
	for d := 0; d < n; d++ {
		id := fmt.Sprintf("cli-%d", d)
		if _, err := c.QoS(ctx, id, 0, specs[d]); err != nil {
			t.Fatalf("qos %s: %v", id, err)
		}
		dev, err := c.Device(ctx, id)
		if err != nil || dev.ID != id {
			t.Fatalf("device %s: %+v, %v", id, dev, err)
		}
	}

	seen := c.NodesSeen()
	if len(seen) < 2 {
		t.Fatalf("answers attributed to %d nodes (%v), want spread over >= 2", len(seen), seen)
	}
	var total int64
	for _, v := range seen {
		total += v
	}
	if total == 0 {
		t.Fatal("no answers attributed at all")
	}

	// Per-node breakers are addressable, and direct routing burned no
	// retries or redirects.
	if c.BreakerAt("qos", clus.URLs()[1]) == nil || c.Breaker("qos") == nil {
		t.Fatal("breaker accessors returned nil")
	}
	st := c.Stats()
	if st.Retries != 0 || st.Redirects != 0 || st.BreakerOpens != 0 {
		t.Fatalf("ring-routed run spent budget: %+v", st)
	}

	for d := 0; d < n; d++ {
		if err := c.Deregister(ctx, fmt.Sprintf("cli-%d", d)); err != nil {
			t.Fatalf("deregister cli-%d: %v", d, err)
		}
	}
}

func TestClientFollowsRedirectWithoutRefresh(t *testing.T) {
	clus, err := fleettest.NewCluster(fleettest.ClusterOptions{Redirect: true, TraceSeed: 53})
	if err != nil {
		t.Fatal(err)
	}
	defer clus.Close()

	// No RefreshRing: every call defaults to the first target, so a
	// device owned elsewhere must arrive via the 307 path.
	c := clusterClient(clus.URLs())
	ring, err := cluster.NewRing([]string{"node-0", "node-1", "node-2"}, cluster.DefaultVNodes)
	if err != nil {
		t.Fatal(err)
	}
	id := ""
	for i := 0; i < 1000; i++ {
		if cand := fmt.Sprintf("redir-%d", i); ring.Owner(cand) != "node-0" {
			id = cand
			break
		}
	}
	if id == "" {
		t.Fatal("no device owned away from node-0")
	}

	spec := registerOne(t, c, id)
	ctx := context.Background()
	if _, err := c.QoS(ctx, id, 0, spec); err != nil {
		t.Fatalf("qos via redirect: %v", err)
	}

	st := c.Stats()
	if st.Redirects == 0 {
		t.Fatal("no redirect recorded despite a cold mirror")
	}
	if st.Retries != 0 || st.BreakerOpens != 0 {
		t.Fatalf("redirects burned retry/breaker budget: %+v", st)
	}
	if len(c.NodesSeen()) == 0 {
		t.Fatal("redirected answers not attributed")
	}
}

func TestRefreshRingErrors(t *testing.T) {
	c := New(Config{BaseURL: "http://127.0.0.1:1"})
	if err := c.RefreshRing(context.Background()); err == nil {
		t.Fatal("RefreshRing without targets succeeded")
	}
	c = New(Config{Targets: []string{"http://127.0.0.1:1"}, AttemptTimeout: 200 * time.Millisecond})
	if err := c.RefreshRing(context.Background()); err == nil {
		t.Fatal("RefreshRing against a dead target succeeded")
	}
}

func TestRedirectErrorAndBreakerStrings(t *testing.T) {
	e := redirectError{target: "http://owner"}
	if !strings.Contains(e.Error(), "http://owner") {
		t.Fatalf("redirectError.Error() = %q", e.Error())
	}
	states := map[BreakerState]string{
		Closed:           "closed",
		Open:             "open",
		HalfOpen:         "half-open",
		BreakerState(99): "unknown",
	}
	for s, want := range states {
		if got := s.String(); got != want {
			t.Fatalf("BreakerState(%d).String() = %q, want %q", s, got, want)
		}
	}
}

func TestRunLoadClusterMode(t *testing.T) {
	clus, err := fleettest.NewCluster(fleettest.ClusterOptions{TraceSeed: 57})
	if err != nil {
		t.Fatal(err)
	}
	defer clus.Close()

	report, err := RunLoad(LoadParams{
		Targets:            clus.URLs(),
		Devices:            4,
		EventsPerDevice:    3,
		Database:           "red",
		PRC:                0.5,
		MeanInterArrivalMs: 0.1,
		Seed:               3,
		DevicePrefix:       "clusterload",
		MaxAttempts:        4,
		AttemptTimeout:     5 * time.Second,
	})
	if err != nil {
		t.Fatalf("RunLoad: %v", err)
	}
	if report.Events != 12 || report.Errors != 0 {
		t.Fatalf("report = %+v, want 12 clean events", report)
	}
	if len(report.PerNode) == 0 {
		t.Fatal("cluster-mode report carries no per-node attribution")
	}
	var attributed int64
	for _, v := range report.PerNode {
		attributed += v
	}
	if attributed < int64(report.Events) {
		t.Fatalf("per-node answers %d < events %d", attributed, report.Events)
	}
	if !strings.Contains(report.String(), "node ") {
		t.Fatalf("report text missing per-node lines:\n%s", report)
	}

	// The named-database miss is a loadgen error, not a server one.
	if _, err := RunLoad(LoadParams{
		Targets: clus.URLs(), Devices: 1, EventsPerDevice: 1,
		Database: "no-such-db", AttemptTimeout: 5 * time.Second,
	}); err == nil {
		t.Fatal("RunLoad accepted an unknown database")
	}
	if _, err := RunLoad(LoadParams{Devices: 0, EventsPerDevice: 1}); err == nil {
		t.Fatal("RunLoad accepted zero devices")
	}
}

func TestLoadReportStringPerNode(t *testing.T) {
	r := &LoadReport{
		Devices: 2, Events: 10, Retries: 1, Redirects: 3,
		Duration: time.Second, Throughput: 10,
		PerNode: map[string]int64{"node-1": 6, "node-0": 4},
	}
	s := r.String()
	for _, want := range []string{"node-0", "node-1", "redirects"} {
		if !strings.Contains(s, want) {
			t.Fatalf("report %q missing %q", s, want)
		}
	}
	// Per-node lines render in sorted node order.
	if strings.Index(s, "node-0") > strings.Index(s, "node-1") {
		t.Fatalf("per-node lines unsorted: %q", s)
	}
}
