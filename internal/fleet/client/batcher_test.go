package client

// Batch client tests: DecideBatch must answer exactly what the
// single-event path answers (over JSON and the binary codec alike),
// and the Batcher must coalesce concurrent submitters into few
// requests while handing each submitter exactly its own slot.

import (
	"context"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"clrdse/internal/fleet"
	"clrdse/internal/fleet/fleettest"
)

// newBatchServer boots a fleet server and returns its base URL plus a
// counter of batch-endpoint requests served.
func newBatchServer(t *testing.T) (string, *atomic.Int64) {
	t.Helper()
	srv, err := fleet.NewServer(fleet.ServerConfig{
		Databases: fleettest.Databases(t),
		Logger:    slog.New(slog.NewTextHandler(io.Discard, nil)),
	})
	if err != nil {
		t.Fatal(err)
	}
	var batches atomic.Int64
	h := srv.Handler()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasSuffix(r.URL.Path, ":decide-batch") {
			batches.Add(1)
		}
		h.ServeHTTP(w, r)
	}))
	t.Cleanup(ts.Close)
	return ts.URL, &batches
}

// registerBatchDevices registers n devices against the first database
// and returns their IDs together with a loose (always satisfiable)
// specification.
func registerBatchDevices(t *testing.T, c *Client, n int) ([]string, fleet.QoSSpecJSON) {
	t.Helper()
	db := fleettest.Databases(t)[0]
	loose := fleettest.LooseSpec(db.DB)
	looseJ := fleet.QoSSpecJSON{SMaxMs: loose.SMaxMs, FMin: loose.FMin}
	ids := make([]string, n)
	for i := range ids {
		ids[i] = "bc-" + string(rune('a'+i))
		req := fleet.RegisterRequest{
			ID: ids[i], Database: db.Name, PRC: 0.5,
			Trigger: "on-violation", Initial: looseJ,
		}
		if _, err := c.Register(context.Background(), req); err != nil {
			t.Fatalf("registering %s: %v", ids[i], err)
		}
	}
	return ids, looseJ
}

// TestClientDecideBatch drives the same mixed batch — fresh decisions,
// a replay, a stale sequence, a ghost device — through a JSON client
// and a binary client against identical servers, and expects identical
// per-slot results.
func TestClientDecideBatch(t *testing.T) {
	run := func(t *testing.T, binary bool) []fleet.BatchResultJSON {
		base, _ := newBatchServer(t)
		c := New(Config{BaseURL: base, Binary: binary, JitterSeed: 3})
		ids, looseJ := registerBatchDevices(t, c, 2)
		events := []fleet.BatchEventJSON{
			{Device: ids[0], Seq: 1, QoSSpecJSON: looseJ},
			{Device: ids[1], Seq: 1, QoSSpecJSON: looseJ},
			{Device: ids[0], Seq: 2, QoSSpecJSON: looseJ},
			{Device: ids[0], Seq: 2, QoSSpecJSON: looseJ}, // replay
			{Device: ids[1], Seq: 0, QoSSpecJSON: looseJ}, // seq 0: no replay cache
			{Device: "ghost", Seq: 1, QoSSpecJSON: looseJ},
		}
		results, err := c.DecideBatch(context.Background(), events)
		if err != nil {
			t.Fatalf("DecideBatch(binary=%v): %v", binary, err)
		}
		if len(results) != len(events) {
			t.Fatalf("got %d results for %d events", len(results), len(events))
		}
		for i := 0; i < 5; i++ {
			if results[i].Status != http.StatusOK || results[i].Decision == nil {
				t.Errorf("slot %d: %+v, want a 200 decision", i, results[i])
			}
		}
		// Slot 3 replays slot 2's event: the cached answer must be
		// identical to the original.
		if !reflect.DeepEqual(results[3].Decision, results[2].Decision) {
			t.Errorf("replay slot diverged:\n got %+v\nwant %+v", results[3].Decision, results[2].Decision)
		}
		if results[5].Status != http.StatusNotFound {
			t.Errorf("ghost slot: status %d, want 404", results[5].Status)
		}
		// A stale sequence after the replay-capable events.
		stale, err := c.DecideBatch(context.Background(), []fleet.BatchEventJSON{
			{Device: ids[0], Seq: 1, QoSSpecJSON: looseJ},
		})
		if err != nil {
			t.Fatal(err)
		}
		if stale[0].Status != http.StatusConflict {
			t.Errorf("stale slot: status %d, want 409", stale[0].Status)
		}
		return results
	}
	jsonRes := run(t, false)
	binRes := run(t, true)
	if !reflect.DeepEqual(jsonRes, binRes) {
		t.Fatalf("binary batch diverged from JSON:\n got %+v\nwant %+v", binRes, jsonRes)
	}
}

// TestBatcherCoalesces: submitters filling a batch share one HTTP
// request, each receiving exactly its own slot.
func TestBatcherCoalesces(t *testing.T) {
	base, batches := newBatchServer(t)
	c := New(Config{BaseURL: base, JitterSeed: 5})
	ids, looseJ := registerBatchDevices(t, c, 4)

	// Age far beyond the test: only the count threshold may flush.
	b := c.NewBatcher(len(ids), time.Minute)
	var wg sync.WaitGroup
	slots := make([]*fleet.BatchResultJSON, len(ids))
	errs := make([]error, len(ids))
	for i, id := range ids {
		wg.Add(1)
		go func(i int, id string) {
			defer wg.Done()
			slots[i], errs[i] = b.Submit(context.Background(),
				fleet.BatchEventJSON{Device: id, Seq: 1, QoSSpecJSON: looseJ})
		}(i, id)
	}
	wg.Wait()
	for i := range slots {
		if errs[i] != nil {
			t.Fatalf("submit %d: %v", i, errs[i])
		}
		if slots[i].Status != http.StatusOK || slots[i].Decision == nil {
			t.Fatalf("submit %d: %+v, want a 200 decision", i, slots[i])
		}
		if slots[i].Decision.Device != ids[i] {
			t.Errorf("submit %d answered device %q, want %q", i, slots[i].Decision.Device, ids[i])
		}
	}
	if n := batches.Load(); n != 1 {
		t.Fatalf("%d batch requests for %d coalesced submits, want 1", n, len(ids))
	}
	b.Close()
}

// TestBatcherAgeFlush: a lone event must not wait for the batch to
// fill — the age bound flushes it.
func TestBatcherAgeFlush(t *testing.T) {
	base, batches := newBatchServer(t)
	c := New(Config{BaseURL: base, JitterSeed: 7})
	ids, looseJ := registerBatchDevices(t, c, 1)

	b := c.NewBatcher(1000, 5*time.Millisecond)
	defer b.Close()
	slot, err := b.Submit(context.Background(),
		fleet.BatchEventJSON{Device: ids[0], Seq: 1, QoSSpecJSON: looseJ})
	if err != nil {
		t.Fatal(err)
	}
	if slot.Status != http.StatusOK || slot.Decision == nil {
		t.Fatalf("aged slot: %+v, want a 200 decision", slot)
	}
	if n := batches.Load(); n != 1 {
		t.Fatalf("%d batch requests, want 1", n)
	}
}

// TestBatcherClose: Close flushes a buffered partial batch, and later
// Submits fail fast with ErrBatcherClosed.
func TestBatcherClose(t *testing.T) {
	base, _ := newBatchServer(t)
	c := New(Config{BaseURL: base, JitterSeed: 9})
	ids, looseJ := registerBatchDevices(t, c, 1)

	// Neither threshold can fire during the test: only Close flushes.
	b := c.NewBatcher(1000, time.Hour)
	done := make(chan error, 1)
	go func() {
		slot, err := b.Submit(context.Background(),
			fleet.BatchEventJSON{Device: ids[0], Seq: 1, QoSSpecJSON: looseJ})
		if err == nil && (slot.Status != http.StatusOK || slot.Decision == nil) {
			err = &APIError{Status: slot.Status, Message: slot.Error}
		}
		done <- err
	}()
	// Wait for the submit to be buffered before closing.
	for {
		b.mu.Lock()
		buffered := len(b.groups) > 0
		b.mu.Unlock()
		if buffered {
			break
		}
		time.Sleep(time.Millisecond)
	}
	b.Close()
	if err := <-done; err != nil {
		t.Fatalf("submit flushed by Close: %v", err)
	}
	if _, err := b.Submit(context.Background(), fleet.BatchEventJSON{Device: ids[0], Seq: 2, QoSSpecJSON: looseJ}); err != ErrBatcherClosed {
		t.Fatalf("submit after Close: %v, want ErrBatcherClosed", err)
	}
}
