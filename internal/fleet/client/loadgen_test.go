package client_test

import (
	"io"
	"log/slog"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"clrdse/internal/fleet"
	"clrdse/internal/fleet/client"
	"clrdse/internal/fleet/fleettest"
)

// TestLoadgenDrivesMetrics runs the load generator end to end against
// a real server and cross-checks the report against the server's
// Prometheus metrics: every event must land as exactly one decision.
func TestLoadgenDrivesMetrics(t *testing.T) {
	srv, err := fleet.NewServer(fleet.ServerConfig{
		Databases: fleettest.Databases(t),
		Logger:    slog.New(slog.NewTextHandler(io.Discard, nil)),
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const devices, events = 6, 15
	report, err := client.RunLoad(client.LoadParams{
		BaseURL:         ts.URL,
		Devices:         devices,
		EventsPerDevice: events,
		Database:        "red",
		PRC:             0.5,
		Seed:            11,
		DevicePrefix:    "lg",
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.Events != devices*events {
		t.Fatalf("report.Events = %d, want %d", report.Events, devices*events)
	}
	if report.Errors != 0 {
		t.Fatalf("report.Errors = %d, want 0", report.Errors)
	}
	if report.Throughput <= 0 || report.P50 <= 0 || report.Max < report.P99 {
		t.Fatalf("implausible latency report: %+v", report)
	}

	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	metrics := string(body)
	for _, want := range []string{
		"clr_fleet_decisions_total 90",
		"clr_fleet_devices 6",
		"clr_fleet_registrations_total 6",
		"clr_fleet_degraded_decisions_total 0",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestLoadgenBatched runs the load generator in batched binary mode:
// every event must still land as exactly one decision on the server,
// errors stay zero, and the latency report stays plausible.
func TestLoadgenBatched(t *testing.T) {
	srv, err := fleet.NewServer(fleet.ServerConfig{
		Databases: fleettest.Databases(t),
		Logger:    slog.New(slog.NewTextHandler(io.Discard, nil)),
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const devices, events = 8, 12
	report, err := client.RunLoad(client.LoadParams{
		BaseURL:         ts.URL,
		Devices:         devices,
		EventsPerDevice: events,
		Database:        "red",
		PRC:             0.5,
		Seed:            13,
		DevicePrefix:    "lb",
		Batch:           devices, // fills when all devices are in flight
		BatchAge:        2 * time.Millisecond,
		Binary:          true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.Events != devices*events {
		t.Fatalf("report.Events = %d, want %d", report.Events, devices*events)
	}
	if report.Errors != 0 {
		t.Fatalf("report.Errors = %d, want 0", report.Errors)
	}
	if report.Throughput <= 0 || report.P50 <= 0 || report.Max < report.P99 {
		t.Fatalf("implausible latency report: %+v", report)
	}

	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	metrics := string(body)
	for _, want := range []string{
		"clr_fleet_decisions_total 96",
		"clr_fleet_devices 8",
		"clr_fleet_degraded_decisions_total 0",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestLoadgenUnknownDatabase: a bad database name must fail cleanly,
// not after registering half the fleet.
func TestLoadgenUnknownDatabase(t *testing.T) {
	srv, err := fleet.NewServer(fleet.ServerConfig{
		Databases: fleettest.Databases(t),
		Logger:    slog.New(slog.NewTextHandler(io.Discard, nil)),
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	_, err = client.RunLoad(client.LoadParams{
		BaseURL:         ts.URL,
		Devices:         2,
		EventsPerDevice: 2,
		Database:        "no-such-db",
	})
	if err == nil {
		t.Fatal("want error for unknown database")
	}
	if srv.Registry().Len() != 0 {
		t.Fatalf("%d devices registered despite the failure", srv.Registry().Len())
	}
}
