package client

// A per-endpoint circuit breaker. When an endpoint fails repeatedly,
// hammering it with retries only deepens the outage; the breaker
// opens after a threshold of consecutive failures, fails calls fast
// for a cooldown, then lets exactly one probe through (half-open) to
// test recovery before closing again.

import (
	"sync"
	"time"
)

// BreakerState is the circuit breaker's state.
type BreakerState int

const (
	// Closed passes all calls through (the healthy state).
	Closed BreakerState = iota
	// Open fails all calls fast until the cooldown elapses.
	Open
	// HalfOpen admits a single probe; its outcome decides the state.
	HalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	}
	return "unknown"
}

// Breaker is a consecutive-failure circuit breaker. It is safe for
// concurrent use.
type Breaker struct {
	mu        sync.Mutex
	threshold int
	cooldown  time.Duration
	now       func() time.Time

	state    BreakerState
	failures int
	openedAt time.Time
	probing  bool
	opens    uint64
}

// NewBreaker builds a breaker that opens after threshold consecutive
// failures and probes again after cooldown. now overrides the clock
// for tests (nil selects time.Now).
func NewBreaker(threshold int, cooldown time.Duration, now func() time.Time) *Breaker {
	if threshold <= 0 {
		threshold = 8
	}
	if cooldown <= 0 {
		cooldown = 2 * time.Second
	}
	if now == nil {
		now = time.Now
	}
	return &Breaker{threshold: threshold, cooldown: cooldown, now: now}
}

// Allow reports whether a call may proceed now. In the open state it
// transitions to half-open once the cooldown has elapsed, admitting
// exactly one probe; concurrent callers are rejected until the probe
// reports back.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		return true
	case Open:
		//lint:allow lockheld b.now is an injected clock: a fast pure read, set once at construction
		if b.now().Sub(b.openedAt) >= b.cooldown {
			b.state = HalfOpen
			b.probing = true
			return true
		}
		return false
	case HalfOpen:
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
	return false
}

// Success reports a completed call; it closes a half-open breaker and
// resets the failure run.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = Closed
	b.failures = 0
	b.probing = false
}

// Failure reports a failed call; it re-opens a half-open breaker
// immediately and opens a closed one at the threshold.
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case HalfOpen:
		b.open()
	case Closed:
		b.failures++
		if b.failures >= b.threshold {
			b.open()
		}
	}
}

// open transitions to Open; callers hold b.mu.
func (b *Breaker) open() {
	b.state = Open
	b.openedAt = b.now()
	b.probing = false
	b.failures = 0
	b.opens++
}

// State returns the current state (resolving an elapsed cooldown is
// left to Allow; State is a passive observer).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Opens counts closed/half-open → open transitions.
func (b *Breaker) Opens() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.opens
}
