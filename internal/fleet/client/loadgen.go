package client

// Load generator for the decision service: K simulated devices, each
// firing QoS-change events with exponentially distributed inter-
// arrival times (the paper's event process, internal/rng.Exponential)
// at a running server, measuring end-to-end decision latency. Every
// device drives the resilient client — sequence-numbered events,
// retries with capped backoff, circuit breakers — so the measured
// throughput is the robust path, not a best-case fast path.

import (
	"context"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"clrdse/internal/fleet"
	"clrdse/internal/rng"
	"clrdse/internal/runtime"
)

// LoadParams configures one load-generation run.
type LoadParams struct {
	// BaseURL locates the server, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Targets, when set, lists all cluster node base URLs: the client
	// runs ring-aware (each device's events go straight to its owning
	// node) and the report breaks throughput down per node.
	Targets []string
	// Devices is the number of simulated devices (K).
	Devices int
	// EventsPerDevice is how many QoS events each device fires.
	EventsPerDevice int
	// Database names the decision basis to register against ("" =
	// the server's first listed database).
	Database string
	// PRC, Trigger, Gamma are the per-device knobs (Trigger "" =
	// "on-violation", the deployment-typical setting).
	PRC     float64
	Trigger string
	Gamma   float64
	// MeanInterArrivalMs, when positive, paces each device's events
	// with Exp(mean) sleeps; 0 fires events back to back (closed
	// loop, the throughput-measuring mode).
	MeanInterArrivalMs float64
	// Seed drives every device's specification stream; equal seeds
	// produce identical event sequences.
	Seed int64
	// DevicePrefix namespaces the registered device IDs (default
	// "loadgen").
	DevicePrefix string
	// Client optionally overrides the resilient client configuration
	// (BaseURL is filled from this struct when empty).
	Client *Client
	// MaxAttempts and AttemptTimeout configure the built client when
	// Client is nil (0 selects the client defaults).
	MaxAttempts    int
	AttemptTimeout time.Duration
	// Batch, when positive, coalesces events from all devices into
	// batch decide calls of up to this size (one shared Batcher); 0
	// keeps the single-event path.
	Batch int
	// BatchAge bounds how long a buffered event waits for its batch
	// to fill (0 selects the Batcher default, 5ms). Only meaningful
	// with Batch > 0.
	BatchAge time.Duration
	// Binary puts batch calls on the compact binary codec instead of
	// JSON (ignored when Client is set — configure it there).
	Binary bool
}

// LoadReport summarises one run.
type LoadReport struct {
	// Devices and Events are the realised counts; Errors counts
	// events that failed after all retries.
	Devices, Events, Errors int
	// Reconfigs and Violations aggregate the decision outcomes;
	// Degraded counts last-known-good fallback answers.
	Reconfigs, Violations, Degraded int
	// Retries counts re-attempts the resilient client absorbed;
	// Redirects counts cluster ownership re-resolutions followed.
	Retries   int64
	Redirects int64
	// Duration is the wall-clock span of the event phase.
	Duration time.Duration
	// Throughput is decisions per second over Duration.
	Throughput float64
	// PerNode attributes answered calls to the cluster node that
	// served them (X-Clr-Node header; empty outside cluster mode).
	PerNode map[string]int64
	// P50/P95/P99/Max are end-to-end decision latencies.
	P50, P95, P99, Max time.Duration
}

// String renders the report for terminals.
func (r *LoadReport) String() string {
	s := fmt.Sprintf(
		"devices:     %d\nevents:      %d (%d errors, %d retries, %d degraded)\nreconfigs:   %d\nviolations:  %d\nduration:    %v\nthroughput:  %.0f decisions/s\nlatency p50: %v\nlatency p95: %v\nlatency p99: %v\nlatency max: %v",
		r.Devices, r.Events, r.Errors, r.Retries, r.Degraded,
		r.Reconfigs, r.Violations,
		r.Duration.Round(time.Millisecond), r.Throughput,
		r.P50, r.P95, r.P99, r.Max)
	if len(r.PerNode) > 0 {
		nodes := make([]string, 0, len(r.PerNode))
		for n := range r.PerNode {
			nodes = append(nodes, n)
		}
		sort.Strings(nodes)
		secs := r.Duration.Seconds()
		for _, n := range nodes {
			line := fmt.Sprintf("\nnode %-12s %d answers", n+":", r.PerNode[n])
			if secs > 0 {
				line += fmt.Sprintf(" (%.0f/s)", float64(r.PerNode[n])/secs)
			}
			s += line
		}
		if r.Redirects > 0 {
			s += fmt.Sprintf("\nredirects:   %d", r.Redirects)
		}
	}
	return s
}

// RunLoad executes the load generation against a running server.
func RunLoad(p LoadParams) (*LoadReport, error) {
	if p.Devices <= 0 || p.EventsPerDevice <= 0 {
		return nil, fmt.Errorf("client: loadgen needs positive device and event counts")
	}
	if p.DevicePrefix == "" {
		p.DevicePrefix = "loadgen"
	}
	if p.Trigger == "" {
		p.Trigger = "on-violation"
	}
	c := p.Client
	if c == nil {
		tr := http.DefaultTransport.(*http.Transport).Clone()
		tr.MaxIdleConnsPerHost = p.Devices
		c = New(Config{
			BaseURL:        p.BaseURL,
			Targets:        p.Targets,
			Transport:      tr,
			MaxAttempts:    p.MaxAttempts,
			AttemptTimeout: p.AttemptTimeout,
			JitterSeed:     p.Seed,
			Binary:         p.Binary,
		})
	}
	ctx := context.Background()
	if len(p.Targets) > 0 {
		// Prime the ownership mirror so the measured phase routes
		// directly; a failure just means the first calls ride the
		// forward/redirect path until a redirect teaches us better.
		//lint:allow errdrop warm-up only; the measured phase self-corrects via redirects
		_ = c.RefreshRing(ctx)
	}

	db, err := pickDatabase(ctx, c, p.Database)
	if err != nil {
		return nil, err
	}
	// Sample specifications from the database's satisfiable envelope,
	// with the run-time simulator's drift characteristics.
	model := runtime.QoSModel{
		MeanS:   (db.MinMakespanMs + db.MaxMakespanMs) / 2,
		StdS:    (db.MaxMakespanMs - db.MinMakespanMs) / 4,
		MeanF:   (db.MinReliability + db.MaxReliability) / 2,
		StdF:    (db.MaxReliability - db.MinReliability) / 4,
		Rho:     -0.3,
		Persist: 0.6,
		LoS:     db.MinMakespanMs, HiS: db.MaxMakespanMs * 1.05,
		LoF: db.MinReliability * 0.98, HiF: db.MaxReliability,
	}

	// Derive per-device RNGs before spawning workers so the streams
	// are a pure function of the seed, not of goroutine scheduling.
	root := rng.New(p.Seed)
	sources := make([]*rng.Source, p.Devices)
	for d := range sources {
		sources[d] = root.Split(int64(d))
	}

	// Register all devices first: the measured phase is pure decision
	// traffic.
	for d := 0; d < p.Devices; d++ {
		req := fleet.RegisterRequest{
			ID:       fmt.Sprintf("%s-%d", p.DevicePrefix, d),
			Database: db.Name,
			PRC:      p.PRC,
			Trigger:  p.Trigger,
			Gamma:    p.Gamma,
			Initial:  fleet.QoSSpecJSON{SMaxMs: db.MaxMakespanMs, FMin: db.MinReliability},
		}
		if _, err := c.Register(ctx, req); err != nil {
			return nil, fmt.Errorf("client: loadgen register %s: %w", req.ID, err)
		}
	}

	// With batching on, every device feeds one shared Batcher: batches
	// fill across devices, so the amortisation grows with concurrency.
	var batcher *Batcher
	if p.Batch > 0 {
		batcher = c.NewBatcher(p.Batch, p.BatchAge)
	}

	type workerResult struct {
		latencies                       []time.Duration
		errors                          int
		reconfigs, violations, degraded int
	}
	results := make([]workerResult, p.Devices)
	var wg sync.WaitGroup
	start := time.Now()
	for d := 0; d < p.Devices; d++ {
		wg.Add(1)
		go func(d int) {
			defer wg.Done()
			src := sources[d]
			stream := model.Stream()
			res := &results[d]
			res.latencies = make([]time.Duration, 0, p.EventsPerDevice)
			id := fmt.Sprintf("%s-%d", p.DevicePrefix, d)
			for i := 0; i < p.EventsPerDevice; i++ {
				if p.MeanInterArrivalMs > 0 {
					time.Sleep(time.Duration(src.Exponential(p.MeanInterArrivalMs) * float64(time.Millisecond)))
				}
				spec := stream.Next(src)
				specJ := fleet.QoSSpecJSON{SMaxMs: spec.SMaxMs, FMin: spec.FMin}
				t0 := time.Now()
				var dec *fleet.DecisionJSON
				var err error
				if batcher != nil {
					var slot *fleet.BatchResultJSON
					slot, err = batcher.Submit(ctx, fleet.BatchEventJSON{Device: id, Seq: uint64(i + 1), QoSSpecJSON: specJ})
					if err == nil {
						if slot.Status != http.StatusOK || slot.Decision == nil {
							err = &APIError{Status: slot.Status, Message: slot.Error}
						} else {
							dec = slot.Decision
						}
					}
				} else {
					dec, err = c.QoS(ctx, id, uint64(i+1), specJ)
				}
				res.latencies = append(res.latencies, time.Since(t0))
				if err != nil {
					res.errors++
					continue
				}
				if dec.Degraded {
					res.degraded++
				}
				if dec.Reconfigured {
					res.reconfigs++
				}
				if dec.Violated {
					res.violations++
				}
			}
		}(d)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if batcher != nil {
		// Submits are synchronous, so every batch has answered; this
		// just retires the batcher's bookkeeping.
		batcher.Close()
	}

	cs := c.Stats()
	report := &LoadReport{Devices: p.Devices, Duration: elapsed, Retries: cs.Retries, Redirects: cs.Redirects}
	if nodes := c.NodesSeen(); len(nodes) > 0 && len(p.Targets) > 0 {
		report.PerNode = nodes
	}
	var all []time.Duration
	for _, res := range results {
		all = append(all, res.latencies...)
		report.Errors += res.errors
		report.Reconfigs += res.reconfigs
		report.Violations += res.violations
		report.Degraded += res.degraded
	}
	report.Events = len(all)
	if elapsed > 0 {
		report.Throughput = float64(report.Events) / elapsed.Seconds()
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	if len(all) > 0 {
		report.P50 = quantileDur(all, 0.50)
		report.P95 = quantileDur(all, 0.95)
		report.P99 = quantileDur(all, 0.99)
		report.Max = all[len(all)-1]
	}
	return report, nil
}

// quantileDur returns the q-quantile of a sorted sample by the
// nearest-rank method.
func quantileDur(sorted []time.Duration, q float64) time.Duration {
	idx := int(q*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// pickDatabase fetches the server's database listing and selects the
// named one (or the first).
func pickDatabase(ctx context.Context, c *Client, name string) (*fleet.DatabaseJSON, error) {
	dbs, err := c.Databases(ctx)
	if err != nil {
		return nil, fmt.Errorf("client: loadgen list databases: %w", err)
	}
	if len(dbs) == 0 {
		return nil, fmt.Errorf("client: server lists no databases")
	}
	if name == "" {
		return &dbs[0], nil
	}
	for i := range dbs {
		if dbs[i].Name == name {
			return &dbs[i], nil
		}
	}
	return nil, fmt.Errorf("client: server does not serve database %q", name)
}
