package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"clrdse/internal/cluster"
	"clrdse/internal/fleet"
	"clrdse/internal/obs"
	"clrdse/internal/rng"
)

// ErrBreakerOpen reports a call rejected fast because the endpoint's
// circuit breaker is open.
var ErrBreakerOpen = errors.New("client: circuit breaker open")

// ErrDegraded reports a decision the server answered with its
// degraded last-known-good fallback after retries were exhausted (only
// surfaced when Config.RetryDegraded is set).
var ErrDegraded = errors.New("client: decision degraded")

// APIError is a non-2xx response from the service.
type APIError struct {
	// Status is the HTTP status code.
	Status int
	// Message is the service's error body.
	Message string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("client: status %d: %s", e.Status, e.Message)
}

// redirectError is an attempt outcome, not a failure: the node
// answered 307 + X-Clr-Redirect because another node owns the device.
// The call re-resolves to the named owner without spending a retry or
// a breaker failure.
type redirectError struct{ target string }

func (e *redirectError) Error() string {
	return "client: redirected to owning node " + e.target
}

// maxRedirects bounds redirect-following per attempt; a healthy
// cluster answers in one hop, so more than a few means split views.
const maxRedirects = 4

// Config configures a resilient fleet client.
type Config struct {
	// BaseURL locates the server, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Targets lists the cluster nodes' base URLs. When set, the client
	// is ring-aware: it mirrors the cluster's consistent-hash ring
	// (fetched from any target's /v1/cluster/ring) and sends each
	// device's calls straight to the owning node, falling back to
	// redirect/forward only while its view is stale. BaseURL may be
	// empty; the first target is then the default for non-device calls.
	Targets []string
	// Transport is the base HTTP transport (nil selects a clone of
	// http.DefaultTransport); the chaos layer wraps here.
	Transport http.RoundTripper
	// MaxAttempts bounds tries per call, first attempt included
	// (0 selects 4).
	MaxAttempts int
	// AttemptTimeout is the per-attempt deadline (0 selects 5s); the
	// caller's ctx bounds the whole call including backoff sleeps.
	AttemptTimeout time.Duration
	// Backoff paces retries (zero value selects DefaultBackoff).
	Backoff Backoff
	// JitterSeed makes the jitter stream deterministic for tests and
	// reproducible load runs.
	JitterSeed int64
	// BreakerThreshold is the consecutive-failure count that opens an
	// endpoint's breaker (0 selects 8).
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker rejects calls
	// before probing (0 selects 2s).
	BreakerCooldown time.Duration
	// RetryDegraded treats degraded decisions as retryable failures:
	// the client re-sends the same sequence number, betting the fault
	// is transient. Off, a degraded decision is a valid answer.
	RetryDegraded bool
	// Binary puts batch calls on the compact binary codec
	// (application/x-clr-bin) instead of JSON. The results are
	// identical; only the wire bytes change.
	Binary bool
}

// Stats counts the client's resilience activity.
type Stats struct {
	// Retries counts re-attempts (attempts beyond each call's first).
	Retries int64
	// BreakerRejects counts calls rejected fast by an open breaker.
	BreakerRejects int64
	// DegradedRetries counts degraded answers that were retried.
	DegradedRetries int64
	// Redirects counts 307 + X-Clr-Redirect hops followed (cluster
	// mode; these are re-resolutions, not retries).
	Redirects int64
	// BreakerOpens counts breaker open transitions across endpoints.
	BreakerOpens uint64
}

// Client is a resilient fleet API client. It is safe for concurrent
// use; one client should be shared per target server so the breakers
// see all traffic.
type Client struct {
	base        string
	targets     []string
	http        *http.Client
	maxAttempts int
	attemptTO   time.Duration
	backoff     Backoff
	retryDeg    bool
	binary      bool

	jmu sync.Mutex
	src *rng.Source

	// minter issues trace IDs for calls whose context carries none —
	// the client is then the trace edge for the call.
	minter *obs.Minter

	// Breakers are per (endpoint, node): a dead node's failures must
	// not open the breaker for the healthy nodes serving the same
	// endpoint. Keys are "endpoint|baseURL", created lazily.
	bmu         sync.Mutex
	breakers    map[string]*Breaker
	brThreshold int
	brCooldown  time.Duration

	// Ring state (cluster mode): the client's mirror of the cluster's
	// ownership map, plus per-device owner hints learned from
	// redirects while the mirror is stale.
	ringMu  sync.Mutex
	ring    *cluster.Ring
	nodeURL map[string]string
	hints   map[string]string

	// nodeN counts answers per serving node (X-Clr-Node), feeding the
	// load generator's per-node throughput report.
	nodeMu sync.Mutex
	nodeN  map[string]int64

	retries    atomic.Int64
	rejects    atomic.Int64
	redirects  atomic.Int64
	degRetries atomic.Int64
}

// endpoints are the breaker domains: one wedged endpoint must not trip
// the others.
var endpoints = []string{"register", "qos", "batch", "device", "databases", "deregister"}

// New builds a client for the configuration.
func New(cfg Config) *Client {
	tr := cfg.Transport
	if tr == nil {
		tr = http.DefaultTransport.(*http.Transport).Clone()
	}
	c := &Client{
		base:        strings.TrimRight(cfg.BaseURL, "/"),
		maxAttempts: cfg.MaxAttempts,
		attemptTO:   cfg.AttemptTimeout,
		backoff:     cfg.Backoff,
		retryDeg:    cfg.RetryDegraded,
		binary:      cfg.Binary,
		src:         rng.New(cfg.JitterSeed),
		minter:      obs.NewMinter(cfg.JitterSeed),
		breakers:    make(map[string]*Breaker, len(endpoints)),
		brThreshold: cfg.BreakerThreshold,
		brCooldown:  cfg.BreakerCooldown,
		hints:       make(map[string]string),
		nodeN:       make(map[string]int64),
	}
	// Cluster redirects (307 + X-Clr-Redirect) are handled by the
	// client itself so they can re-resolve the owner instead of
	// spending retry or breaker budget.
	c.http = &http.Client{
		Transport: tr,
		CheckRedirect: func(*http.Request, []*http.Request) error {
			return http.ErrUseLastResponse
		},
	}
	for _, t := range cfg.Targets {
		c.targets = append(c.targets, strings.TrimRight(t, "/"))
	}
	if c.base == "" && len(c.targets) > 0 {
		c.base = c.targets[0]
	}
	if c.maxAttempts <= 0 {
		c.maxAttempts = 4
	}
	if c.attemptTO <= 0 {
		c.attemptTO = 5 * time.Second
	}
	if c.backoff == (Backoff{}) {
		c.backoff = DefaultBackoff()
	}
	for _, ep := range endpoints {
		c.breakers[ep+"|"+c.base] = NewBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown, nil)
	}
	return c
}

// Stats snapshots the client's resilience counters.
func (c *Client) Stats() Stats {
	s := Stats{
		Retries:         c.retries.Load(),
		BreakerRejects:  c.rejects.Load(),
		DegradedRetries: c.degRetries.Load(),
		Redirects:       c.redirects.Load(),
	}
	c.bmu.Lock()
	defer c.bmu.Unlock()
	for _, b := range c.breakers {
		s.BreakerOpens += b.Opens()
	}
	return s
}

// Breaker exposes an endpoint's breaker ("register", "qos", "batch",
// "device", "databases", "deregister") at the default target. Cluster
// mode keys breakers per node; use BreakerAt for a specific one.
func (c *Client) Breaker(endpoint string) *Breaker { return c.breakerFor(endpoint, c.base) }

// BreakerAt exposes the breaker for an endpoint at one node's base URL.
func (c *Client) BreakerAt(endpoint, baseURL string) *Breaker {
	return c.breakerFor(endpoint, strings.TrimRight(baseURL, "/"))
}

// breakerFor returns (creating on first use) the breaker guarding one
// endpoint at one node.
func (c *Client) breakerFor(endpoint, base string) *Breaker {
	key := endpoint + "|" + base
	c.bmu.Lock()
	defer c.bmu.Unlock()
	b, ok := c.breakers[key]
	if !ok {
		b = NewBreaker(c.brThreshold, c.brCooldown, nil)
		c.breakers[key] = b
	}
	return b
}

// NodesSeen snapshots how many answers each cluster node served
// (attributed by the X-Clr-Node response header; empty outside
// cluster mode).
func (c *Client) NodesSeen() map[string]int64 {
	c.nodeMu.Lock()
	defer c.nodeMu.Unlock()
	out := make(map[string]int64, len(c.nodeN))
	for k, v := range c.nodeN {
		out[k] = v
	}
	return out
}

// RefreshRing refetches the cluster's ring document from the first
// reachable target and rebuilds the client's ownership mirror. Safe
// to call concurrently; a failure leaves the previous mirror (or the
// default-target fallback) in place.
func (c *Client) RefreshRing(ctx context.Context) error {
	if len(c.targets) == 0 {
		return fmt.Errorf("client: no cluster targets configured")
	}
	var lastErr error
	for _, t := range c.targets {
		doc, err := c.fetchRing(ctx, t)
		if err != nil {
			lastErr = err
			continue
		}
		var members []string
		urls := make(map[string]string, len(doc.Members))
		for _, m := range doc.Members {
			urls[m.ID] = strings.TrimRight(m.URL, "/")
			if m.Alive {
				members = append(members, m.ID)
			}
		}
		ring, err := cluster.NewRing(members, doc.VNodes)
		if err != nil {
			lastErr = err
			continue
		}
		c.ringMu.Lock()
		c.ring, c.nodeURL = ring, urls
		// The fresh mirror supersedes every redirect-learned hint.
		c.hints = make(map[string]string)
		c.ringMu.Unlock()
		return nil
	}
	return fmt.Errorf("client: no target served the ring: %w", lastErr)
}

// fetchRing GETs one target's ring document.
func (c *Client) fetchRing(ctx context.Context, target string) (*cluster.RingJSON, error) {
	actx, cancel := context.WithTimeout(ctx, c.attemptTO)
	defer cancel()
	req, err := http.NewRequestWithContext(actx, http.MethodGet, target+"/v1/cluster/ring", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("client: ring fetch from %s: status %d", target, resp.StatusCode)
	}
	var doc cluster.RingJSON
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&doc); err != nil {
		return nil, fmt.Errorf("client: decoding ring document: %w", err)
	}
	return &doc, nil
}

// routeBase resolves where a call should go: a redirect-learned hint
// for the device, else the ring mirror's owner, else the default
// target (whose node will forward or redirect as its mode dictates).
func (c *Client) routeBase(deviceID string) string {
	if deviceID == "" || len(c.targets) == 0 {
		return c.base
	}
	c.ringMu.Lock()
	defer c.ringMu.Unlock()
	if h, ok := c.hints[deviceID]; ok {
		return h
	}
	if c.ring != nil {
		if u, ok := c.nodeURL[c.ring.Owner(deviceID)]; ok {
			return u
		}
	}
	return c.base
}

// noteRedirect records the owner a redirect revealed and refreshes the
// ring mirror (best effort — a redirect means the mirror is stale).
func (c *Client) noteRedirect(ctx context.Context, deviceID, target string) {
	if len(c.targets) > 0 {
		//lint:allow errdrop best-effort mirror refresh; the redirect hint below routes correctly either way
		_ = c.RefreshRing(ctx)
	}
	// The hint lands after the refresh so it survives it: on a split
	// view the redirecting node knows this device's owner better than
	// the mirror does. The next successful refresh clears it.
	if deviceID != "" {
		c.ringMu.Lock()
		c.hints[deviceID] = target
		c.ringMu.Unlock()
	}
}

// retryable classifies a failure: transport errors, 5xx and timeout-ish
// statuses are worth retrying; other 4xx are the caller's bug and
// permanent.
func retryable(err error) bool {
	var apiErr *APIError
	if errors.As(err, &apiErr) {
		return apiErr.Status >= 500 ||
			apiErr.Status == http.StatusRequestTimeout ||
			apiErr.Status == http.StatusTooManyRequests
	}
	return true // transport, decode, breaker, degraded
}

// call is one logical API call for doCall: a pre-encoded payload with
// its content type, retry/redirect routing parameters, and hooks for
// decoding and validating the response.
type call struct {
	endpoint string
	method   string
	path     string
	// deviceID, when non-empty, routes the call through the ring
	// mirror to the owning node.
	deviceID string
	// contentType labels payload; empty with a nil payload.
	contentType string
	payload     []byte
	wantStatus  int
	// handle decodes a successful response body. It runs once per
	// attempt, so it must overwrite its target, never merge into it;
	// its error is a retryable failure (the decision may have been
	// made server-side — the retry answers from the replay cache).
	handle func(data []byte) error
	// accept validates the decoded response; its error counts as a
	// retryable failure.
	accept func() error
}

// do runs one JSON API call: body is marshalled, a successful response
// is unmarshalled into out (out is zeroed per attempt so a field an
// earlier attempt decoded cannot leak through an omitted key). The
// retry/redirect/breaker machinery lives in doCall.
func (c *Client) do(ctx context.Context, endpoint, method, path, deviceID string, body, out any, wantStatus int, accept func() error) error {
	cl := call{
		endpoint:   endpoint,
		method:     method,
		path:       path,
		deviceID:   deviceID,
		wantStatus: wantStatus,
		accept:     accept,
	}
	if body != nil {
		var err error
		if cl.payload, err = json.Marshal(body); err != nil {
			return err
		}
		cl.contentType = "application/json"
	}
	if out != nil {
		cl.handle = func(data []byte) error {
			// out is shared across attempts; zero it first so a field an
			// earlier attempt decoded (e.g. degraded=true) cannot leak
			// into this attempt's answer through an omitted JSON key.
			reflect.ValueOf(out).Elem().SetZero()
			if err := json.Unmarshal(data, out); err != nil {
				return fmt.Errorf("client: decoding response: %w", err)
			}
			return nil
		}
	}
	return c.doCall(ctx, &cl)
}

// doCall runs one API call with retries, backoff, per-attempt
// deadlines and the (endpoint, node) breaker.
//
// A 307 + X-Clr-Redirect answer is neither a retry nor a breaker
// failure: the redirecting node is healthy, it just no longer owns
// the device. The call re-resolves to the named owner immediately
// (bounded by maxRedirects per attempt) and refreshes the ring mirror
// so later calls route directly.
//
// The call's trace ID is resolved exactly once, before the first
// attempt, and every attempt carries it in X-Clr-Trace-Id: a retry is
// the same logical call, so the server's request log and decision
// journal correlate all attempts (and the eventual replay-cache
// answer) under one ID. A context without a trace makes this call the
// trace edge, so minting here is the root, not a mid-stack re-mint
// (tracectx's adopt-first rule: TraceIDFrom before Mint).
func (c *Client) doCall(ctx context.Context, cl *call) error {
	trace := obs.TraceIDFrom(ctx)
	if trace == "" {
		trace = c.minter.Mint()
	}
	var lastErr error
	for attempt := 0; attempt < c.maxAttempts; attempt++ {
		if attempt > 0 {
			c.retries.Add(1)
			delay := c.nextDelay(attempt - 1)
			select {
			case <-time.After(delay):
			case <-ctx.Done():
				return fmt.Errorf("client: %s: %w (last error: %v)", cl.endpoint, ctx.Err(), lastErr)
			}
			// A failed attempt in cluster mode often means the route is
			// stale (the owner died or the device moved); refetch the
			// ring so this retry resolves against live membership.
			if len(c.targets) > 0 && cl.deviceID != "" {
				//lint:allow errdrop best-effort refetch between retries; a stale ring only costs one more forwarded hop
				_ = c.RefreshRing(ctx)
			}
		}
		// Resolve per attempt: a redirect on the previous attempt (or a
		// concurrent call's) may have moved the device's route.
		base := c.routeBase(cl.deviceID)
		var err error
		for hop := 0; ; hop++ {
			err = c.attempt(ctx, c.breakerFor(cl.endpoint, base), trace, base, cl)
			var rd *redirectError
			if !errors.As(err, &rd) {
				break
			}
			if hop >= maxRedirects {
				err = fmt.Errorf("client: %s: %d redirects without an owner settling", cl.endpoint, hop+1)
				break
			}
			c.redirects.Add(1)
			base = rd.target
			c.noteRedirect(ctx, cl.deviceID, rd.target)
		}
		if err == nil {
			return nil
		}
		lastErr = err
		if !retryable(err) {
			return err
		}
	}
	return fmt.Errorf("client: %s: %d attempts exhausted: %w", cl.endpoint, c.maxAttempts, lastErr)
}

// attempt is one try of a call, stamped with the call's trace ID.
func (c *Client) attempt(ctx context.Context, br *Breaker, trace obs.TraceID, base string, cl *call) error {
	if !br.Allow() {
		c.rejects.Add(1)
		return ErrBreakerOpen
	}
	actx, cancel := context.WithTimeout(ctx, c.attemptTO)
	defer cancel()
	var rd io.Reader
	if cl.payload != nil {
		rd = bytes.NewReader(cl.payload)
	}
	req, err := http.NewRequestWithContext(actx, cl.method, base+cl.path, rd)
	if err != nil {
		br.Failure()
		return err
	}
	if cl.contentType != "" {
		req.Header.Set("Content-Type", cl.contentType)
	}
	req.Header.Set(obs.TraceHeader, string(trace))
	resp, err := c.http.Do(req)
	if err != nil {
		br.Failure()
		return err
	}
	data, err := io.ReadAll(resp.Body)
	//lint:allow errdrop close after a full read; drain errors already surfaced via ReadAll
	resp.Body.Close()
	if err != nil {
		br.Failure()
		return fmt.Errorf("client: reading response: %w", err)
	}
	if resp.StatusCode == http.StatusTemporaryRedirect {
		if tgt := resp.Header.Get(cluster.RedirectHeader); tgt != "" {
			// The node answered coherently — it just doesn't own the
			// device. Healthy for breaker purposes.
			br.Success()
			return &redirectError{target: strings.TrimRight(tgt, "/")}
		}
	}
	if resp.StatusCode != cl.wantStatus {
		var apiErr fleet.ErrorJSON
		//lint:allow errdrop best-effort decode of the error body; a non-JSON body falls through to the status-code error
		_ = json.Unmarshal(data, &apiErr)
		err := &APIError{Status: resp.StatusCode, Message: apiErr.Error}
		if retryable(err) {
			br.Failure()
		} else {
			// A 4xx means the endpoint answered coherently: the call is
			// wrong, the service is healthy.
			br.Success()
		}
		return err
	}
	if cl.handle != nil {
		if err := cl.handle(data); err != nil {
			// Truncated or mangled body: the decision may have been
			// made server-side; the retry is answered from the replay
			// cache, so re-sending is safe.
			br.Failure()
			return err
		}
	}
	if cl.accept != nil {
		if err := cl.accept(); err != nil {
			br.Failure()
			return err
		}
	}
	if node := resp.Header.Get(cluster.NodeHeader); node != "" {
		c.nodeMu.Lock()
		c.nodeN[node]++
		c.nodeMu.Unlock()
	}
	br.Success()
	return nil
}

// nextDelay computes the backoff for retry k, drawing jitter from the
// shared source under a lock (rng.Source is not concurrency-safe).
func (c *Client) nextDelay(k int) time.Duration {
	c.jmu.Lock()
	defer c.jmu.Unlock()
	return c.backoff.Delay(k, c.src)
}

// Register registers a device. A Conflict response is treated as
// "already registered" — the typical aftermath of a retried
// registration whose first response was lost — and resolved by
// fetching the device's current state.
func (c *Client) Register(ctx context.Context, req fleet.RegisterRequest) (*fleet.DeviceJSON, error) {
	var dev fleet.DeviceJSON
	err := c.do(ctx, "register", http.MethodPost, "/v1/devices", req.ID, req, &dev, http.StatusCreated, nil)
	var apiErr *APIError
	if errors.As(err, &apiErr) && apiErr.Status == http.StatusConflict {
		return c.Device(ctx, req.ID)
	}
	if err != nil {
		return nil, err
	}
	return &dev, nil
}

// QoS submits one QoS event. seq, when positive, identifies the event
// for exactly-once processing: retries reuse it and the server answers
// replays from its decision cache. With RetryDegraded set, degraded
// answers are retried and the last one is returned with ErrDegraded if
// the fault never cleared.
func (c *Client) QoS(ctx context.Context, id string, seq uint64, spec fleet.QoSSpecJSON) (*fleet.DecisionJSON, error) {
	var dec fleet.DecisionJSON
	req := fleet.QoSRequest{QoSSpecJSON: spec, Seq: seq}
	accept := func() error { return nil }
	if c.retryDeg {
		accept = func() error {
			if dec.Degraded {
				c.degRetries.Add(1)
				return ErrDegraded
			}
			return nil
		}
	}
	err := c.do(ctx, "qos", http.MethodPost, "/v1/devices/"+id+"/qos", id, req, &dec, http.StatusOK, accept)
	if err != nil && c.retryDeg && errors.Is(err, ErrDegraded) && dec.Degraded {
		// Retries exhausted on a persistent fault: the degraded answer
		// is still the service's contract-honouring fallback.
		return &dec, fmt.Errorf("%w (seq %d)", ErrDegraded, seq)
	}
	if err != nil {
		return nil, err
	}
	return &dec, nil
}

// Device fetches a device snapshot.
func (c *Client) Device(ctx context.Context, id string) (*fleet.DeviceJSON, error) {
	var dev fleet.DeviceJSON
	if err := c.do(ctx, "device", http.MethodGet, "/v1/devices/"+id, id, nil, &dev, http.StatusOK, nil); err != nil {
		return nil, err
	}
	return &dev, nil
}

// Databases lists the server's decision bases.
func (c *Client) Databases(ctx context.Context) ([]fleet.DatabaseJSON, error) {
	var dbs []fleet.DatabaseJSON
	if err := c.do(ctx, "databases", http.MethodGet, "/v1/databases", "", nil, &dbs, http.StatusOK, nil); err != nil {
		return nil, err
	}
	return dbs, nil
}

// Deregister removes a device.
func (c *Client) Deregister(ctx context.Context, id string) error {
	return c.do(ctx, "deregister", http.MethodDelete, "/v1/devices/"+id, id, nil, nil, http.StatusNoContent, nil)
}

// payloadPool recycles batch payload buffers: a steady submitter
// re-encodes each flush into the same backing array instead of
// allocating a fresh request body per batch.
var payloadPool = sync.Pool{New: func() any { return new([]byte) }}

// sliceWriter appends into a caller-owned byte slice, letting
// json.Encoder reuse pooled capacity.
type sliceWriter struct{ b *[]byte }

func (w sliceWriter) Write(p []byte) (int, error) {
	*w.b = append(*w.b, p...)
	return len(p), nil
}

// DecideBatch submits many QoS events — possibly for many devices —
// in one request and returns the per-event results, index-aligned
// with events. A per-event failure (unknown device, stale sequence)
// lands in its own slot's Status/Error; the returned error covers
// only whole-call failures (transport, breaker, non-200 answer).
// Retries re-send the entire batch: each event's Seq rides the
// server's exactly-once replay cache, so a re-sent batch answers
// identically. With Config.Binary the batch travels on the compact
// binary codec; the results are the same either way.
//
// In cluster mode the call routes to the node owning the first
// event's device; a mixed-owner batch is re-bucketed by that node's
// edge, so grouping events per owner (as Batcher does) keeps the
// whole batch single-hop.
func (c *Client) DecideBatch(ctx context.Context, events []fleet.BatchEventJSON) ([]fleet.BatchResultJSON, error) {
	if len(events) == 0 {
		return nil, nil
	}
	buf := payloadPool.Get().(*[]byte)
	cl := call{
		endpoint:   "batch",
		method:     http.MethodPost,
		path:       "/v1/devices:decide-batch",
		deviceID:   events[0].Device,
		wantStatus: http.StatusOK,
	}
	if c.binary {
		cl.contentType = fleet.BinContentType
		var err error
		if cl.payload, err = fleet.AppendBatchRequest((*buf)[:0], events); err != nil {
			payloadPool.Put(buf)
			return nil, err
		}
	} else {
		cl.contentType = "application/json"
		cl.payload = (*buf)[:0]
		if err := json.NewEncoder(sliceWriter{&cl.payload}).Encode(fleet.BatchRequestJSON{Events: events}); err != nil {
			payloadPool.Put(buf)
			return nil, err
		}
	}
	var results []fleet.BatchResultJSON
	cl.handle = func(data []byte) error {
		var err error
		if c.binary {
			results, err = fleet.DecodeBatchResponse(data, results[:0])
		} else {
			var br fleet.BatchResponseJSON
			if err = json.Unmarshal(data, &br); err == nil {
				results = br.Results
			}
		}
		if err != nil {
			return fmt.Errorf("client: decoding batch response: %w", err)
		}
		if len(results) != len(events) {
			return fmt.Errorf("client: batch answered %d results for %d events", len(results), len(events))
		}
		return nil
	}
	err := c.doCall(ctx, &cl)
	*buf = cl.payload[:0]
	payloadPool.Put(buf)
	if err != nil {
		return nil, err
	}
	return results, nil
}
