package client

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"clrdse/internal/fleet"
	"clrdse/internal/obs"
	"clrdse/internal/rng"
)

// TestBackoffDelays: the exponential schedule with its cap, jitter off.
func TestBackoffDelays(t *testing.T) {
	b := Backoff{Base: 50 * time.Millisecond, Max: 400 * time.Millisecond}
	tests := []struct {
		attempt int
		want    time.Duration
	}{
		{0, 50 * time.Millisecond},
		{1, 100 * time.Millisecond},
		{2, 200 * time.Millisecond},
		{3, 400 * time.Millisecond},
		{4, 400 * time.Millisecond},  // capped
		{10, 400 * time.Millisecond}, // stays capped, no overflow
	}
	for _, tc := range tests {
		if got := b.Delay(tc.attempt, nil); got != tc.want {
			t.Errorf("Delay(%d) = %v, want %v", tc.attempt, got, tc.want)
		}
	}
}

// TestBackoffJitterBounds: with jitter j, every delay lies in
// [(1-j)*nominal, nominal], and a fixed seed reproduces the sequence.
func TestBackoffJitterBounds(t *testing.T) {
	b := Backoff{Base: 100 * time.Millisecond, Max: time.Second, Jitter: 0.5}
	src := rng.New(42)
	var first []time.Duration
	for attempt := 0; attempt < 6; attempt++ {
		nominal := Backoff{Base: b.Base, Max: b.Max}.Delay(attempt, nil)
		for i := 0; i < 50; i++ {
			d := b.Delay(attempt, src)
			if d > nominal || d < time.Duration(float64(nominal)*(1-b.Jitter)) {
				t.Fatalf("Delay(%d) = %v outside [%v, %v]",
					attempt, d, time.Duration(float64(nominal)*(1-b.Jitter)), nominal)
			}
			first = append(first, d)
		}
	}
	src2 := rng.New(42)
	i := 0
	for attempt := 0; attempt < 6; attempt++ {
		for k := 0; k < 50; k++ {
			if d := b.Delay(attempt, src2); d != first[i] {
				t.Fatalf("jitter stream not reproducible at #%d: %v != %v", i, d, first[i])
			}
			i++
		}
	}
}

// fakeClock is a manually advanced clock for breaker tests.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

// TestBreakerStateMachine walks the full closed → open → half-open →
// {closed, open} diagram with a fake clock.
func TestBreakerStateMachine(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	tests := []struct {
		name string
		run  func(t *testing.T, b *Breaker)
	}{
		{"stays closed below threshold", func(t *testing.T, b *Breaker) {
			b.Failure()
			b.Failure()
			if got := b.State(); got != Closed {
				t.Fatalf("state = %v, want closed", got)
			}
			if !b.Allow() {
				t.Fatal("closed breaker rejected a call")
			}
		}},
		{"success resets the failure run", func(t *testing.T, b *Breaker) {
			b.Failure()
			b.Failure()
			b.Success()
			b.Failure()
			b.Failure()
			if got := b.State(); got != Closed {
				t.Fatalf("state = %v, want closed after reset", got)
			}
		}},
		{"opens at threshold and rejects", func(t *testing.T, b *Breaker) {
			for i := 0; i < 3; i++ {
				b.Failure()
			}
			if got := b.State(); got != Open {
				t.Fatalf("state = %v, want open", got)
			}
			if b.Allow() {
				t.Fatal("open breaker admitted a call inside cooldown")
			}
			if got := b.Opens(); got != 1 {
				t.Fatalf("Opens() = %d, want 1", got)
			}
		}},
		{"half-open admits exactly one probe", func(t *testing.T, b *Breaker) {
			for i := 0; i < 3; i++ {
				b.Failure()
			}
			clk.advance(time.Second)
			if !b.Allow() {
				t.Fatal("cooldown elapsed but probe rejected")
			}
			if got := b.State(); got != HalfOpen {
				t.Fatalf("state = %v, want half-open", got)
			}
			if b.Allow() {
				t.Fatal("half-open breaker admitted a second concurrent probe")
			}
		}},
		{"probe success closes", func(t *testing.T, b *Breaker) {
			for i := 0; i < 3; i++ {
				b.Failure()
			}
			clk.advance(time.Second)
			b.Allow()
			b.Success()
			if got := b.State(); got != Closed {
				t.Fatalf("state = %v, want closed after probe success", got)
			}
			if !b.Allow() {
				t.Fatal("recovered breaker rejected a call")
			}
		}},
		{"probe failure re-opens for a fresh cooldown", func(t *testing.T, b *Breaker) {
			for i := 0; i < 3; i++ {
				b.Failure()
			}
			clk.advance(time.Second)
			b.Allow()
			b.Failure()
			if got := b.State(); got != Open {
				t.Fatalf("state = %v, want open after probe failure", got)
			}
			if b.Allow() {
				t.Fatal("re-opened breaker admitted a call before cooldown")
			}
			clk.advance(time.Second)
			if !b.Allow() {
				t.Fatal("re-opened breaker stayed shut after a full cooldown")
			}
			if got := b.Opens(); got != 2 {
				t.Fatalf("Opens() = %d, want 2", got)
			}
		}},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			tc.run(t, NewBreaker(3, time.Second, clk.now))
		})
	}
}

// TestRetryMasksTransientFailures: a server that fails the first N
// attempts is masked by the retry loop.
func TestRetryMasksTransientFailures(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			http.Error(w, `{"error":"boom"}`, http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `[{"name":"red","points":4}]`)
	}))
	defer ts.Close()

	c := New(Config{
		BaseURL:     ts.URL,
		MaxAttempts: 4,
		Backoff:     Backoff{Base: time.Millisecond, Max: time.Millisecond},
	})
	dbs, err := c.Databases(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(dbs) != 1 || dbs[0].Name != "red" {
		t.Fatalf("got %+v", dbs)
	}
	if got := c.Stats().Retries; got != 2 {
		t.Fatalf("Retries = %d, want 2", got)
	}
}

// TestPermanentErrorNotRetried: a 404 is the caller's problem, not the
// service's — one attempt, no retries, breaker stays closed.
func TestPermanentErrorNotRetried(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, `{"error":"fleet: no such device"}`, http.StatusNotFound)
	}))
	defer ts.Close()

	c := New(Config{BaseURL: ts.URL, MaxAttempts: 4})
	_, err := c.Device(context.Background(), "ghost")
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusNotFound {
		t.Fatalf("err = %v, want APIError 404", err)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("server saw %d calls, want 1", got)
	}
	if got := c.Breaker("device").State(); got != Closed {
		t.Fatalf("breaker = %v, want closed (endpoint answered coherently)", got)
	}
}

// TestBreakerOpensOnPersistentFailure: a hard-down endpoint opens its
// breaker, later calls are rejected without touching the network, and
// the other endpoints' breakers are unaffected.
func TestBreakerOpensOnPersistentFailure(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, `{"error":"down"}`, http.StatusInternalServerError)
	}))
	defer ts.Close()

	c := New(Config{
		BaseURL:          ts.URL,
		MaxAttempts:      4,
		Backoff:          Backoff{Base: time.Millisecond, Max: time.Millisecond},
		BreakerThreshold: 3,
		BreakerCooldown:  time.Hour,
	})
	_, err := c.Databases(context.Background())
	if err == nil {
		t.Fatal("want error from hard-down endpoint")
	}
	if got := c.Breaker("databases").State(); got != Open {
		t.Fatalf("breaker = %v, want open", got)
	}
	seen := calls.Load()

	_, err = c.Databases(context.Background())
	if !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("err = %v, want ErrBreakerOpen", err)
	}
	if got := calls.Load(); got != seen {
		t.Fatalf("open breaker let %d calls through", got-seen)
	}
	if got := c.Stats().BreakerRejects; got == 0 {
		t.Fatal("BreakerRejects not counted")
	}
	if got := c.Breaker("qos").State(); got != Closed {
		t.Fatalf("qos breaker = %v; endpoint isolation broken", got)
	}
}

// TestRegisterConflictResolved: a 409 on register (the aftermath of a
// lost response to an earlier, successful registration) resolves by
// fetching the device.
func TestRegisterConflictResolved(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/devices", func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"fleet: device already registered"}`, http.StatusConflict)
	})
	mux.HandleFunc("GET /v1/devices/{id}", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"id":%q,"database":"red","point":3}`, r.PathValue("id"))
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	c := New(Config{BaseURL: ts.URL})
	dev, err := c.Register(context.Background(), fleet.RegisterRequest{ID: "dev-1", Database: "red"})
	if err != nil {
		t.Fatal(err)
	}
	if dev.ID != "dev-1" || dev.Point != 3 {
		t.Fatalf("resolved device = %+v", dev)
	}
}

// TestQoSRetryDegraded: with RetryDegraded on, a transiently degraded
// answer is retried until a real decision lands.
func TestQoSRetryDegraded(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if calls.Add(1) <= 2 {
			fmt.Fprint(w, `{"device":"d","seq":1,"from":2,"to":2,"degraded":true}`)
			return
		}
		fmt.Fprint(w, `{"device":"d","seq":1,"from":2,"to":5,"reconfigured":true}`)
	}))
	defer ts.Close()

	c := New(Config{
		BaseURL:       ts.URL,
		MaxAttempts:   4,
		Backoff:       Backoff{Base: time.Millisecond, Max: time.Millisecond},
		RetryDegraded: true,
	})
	dec, err := c.QoS(context.Background(), "d", 1, fleet.QoSSpecJSON{SMaxMs: 10, FMin: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if dec.Degraded || dec.To != 5 {
		t.Fatalf("decision = %+v, want the real to=5 answer", dec)
	}
	if got := c.Stats().DegradedRetries; got != 2 {
		t.Fatalf("DegradedRetries = %d, want 2", got)
	}
}

// TestQoSPersistentDegradedReturnsFallback: when the fault never
// clears, the degraded answer is still returned (it is the service's
// contract-honouring fallback) alongside ErrDegraded.
func TestQoSPersistentDegradedReturnsFallback(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"device":"d","seq":1,"from":2,"to":2,"degraded":true}`)
	}))
	defer ts.Close()

	c := New(Config{
		BaseURL:       ts.URL,
		MaxAttempts:   3,
		Backoff:       Backoff{Base: time.Millisecond, Max: time.Millisecond},
		RetryDegraded: true,
	})
	dec, err := c.QoS(context.Background(), "d", 1, fleet.QoSSpecJSON{SMaxMs: 10, FMin: 0.9})
	if !errors.Is(err, ErrDegraded) {
		t.Fatalf("err = %v, want ErrDegraded", err)
	}
	if dec == nil || !dec.Degraded {
		t.Fatalf("decision = %+v, want the degraded fallback", dec)
	}
}

// TestCallerContextBoundsRetries: the caller's deadline cuts the
// retry loop short during a backoff sleep.
func TestCallerContextBoundsRetries(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"down"}`, http.StatusInternalServerError)
	}))
	defer ts.Close()

	c := New(Config{
		BaseURL:     ts.URL,
		MaxAttempts: 100,
		Backoff:     Backoff{Base: time.Second, Max: time.Second},
	})
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.Databases(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("retry loop ignored the caller's deadline (%v)", elapsed)
	}
}

// TestRetriesCarryOneTraceID: retries are the same logical call, so
// every attempt — including the one that finally succeeds — must
// carry the same X-Clr-Trace-Id header. A context-supplied trace ID
// is propagated verbatim; without one the client mints a valid ID at
// the call root and reuses it across the backoff.
func TestRetriesCarryOneTraceID(t *testing.T) {
	var mu sync.Mutex
	var headers []string
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		headers = append(headers, r.Header.Get(obs.TraceHeader))
		mu.Unlock()
		if calls.Add(1) <= 2 {
			http.Error(w, `{"error":"boom"}`, http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `[{"name":"red","points":4}]`)
	}))
	defer ts.Close()

	newClient := func() *Client {
		calls.Store(0)
		mu.Lock()
		headers = nil
		mu.Unlock()
		return New(Config{
			BaseURL:     ts.URL,
			MaxAttempts: 4,
			Backoff:     Backoff{Base: time.Millisecond, Max: time.Millisecond},
			JitterSeed:  42,
		})
	}

	t.Run("context trace propagated across attempts", func(t *testing.T) {
		c := newClient()
		const want = "feedfacefeedface"
		ctx := obs.WithTrace(context.Background(), obs.TraceID(want))
		if _, err := c.Databases(ctx); err != nil {
			t.Fatal(err)
		}
		mu.Lock()
		defer mu.Unlock()
		if len(headers) != 3 {
			t.Fatalf("server saw %d attempts, want 3", len(headers))
		}
		for i, h := range headers {
			if h != want {
				t.Fatalf("attempt %d carried trace %q, want the context's %q", i, h, want)
			}
		}
	})

	t.Run("minted trace stable across attempts", func(t *testing.T) {
		c := newClient()
		if _, err := c.Databases(context.Background()); err != nil {
			t.Fatal(err)
		}
		mu.Lock()
		defer mu.Unlock()
		if len(headers) != 3 {
			t.Fatalf("server saw %d attempts, want 3", len(headers))
		}
		if !obs.TraceID(headers[0]).IsValid() {
			t.Fatalf("minted trace %q is not a valid trace ID", headers[0])
		}
		for i, h := range headers {
			if h != headers[0] {
				t.Fatalf("attempt %d carried trace %q, want the call's %q", i, h, headers[0])
			}
		}
	})

	t.Run("distinct calls get distinct minted traces", func(t *testing.T) {
		c := newClient()
		if _, err := c.Databases(context.Background()); err != nil {
			t.Fatal(err)
		}
		mu.Lock()
		first := headers[len(headers)-1]
		mu.Unlock()
		if _, err := c.Databases(context.Background()); err != nil {
			t.Fatal(err)
		}
		mu.Lock()
		second := headers[len(headers)-1]
		mu.Unlock()
		if first == second {
			t.Fatalf("two calls shared minted trace %q", first)
		}
	})
}
