package client

// Batcher coalesces single QoS events into batch decide calls. Many
// concurrent submitters (one goroutine per device, typically) feed
// one batcher; it buffers events per destination node and flushes a
// batch when either the count threshold or the age threshold of the
// oldest buffered event is reached. Each submitter blocks only for
// its own answer, so batching amortises the HTTP round trip and codec
// work across submitters without serialising them.
//
// In cluster mode events are grouped by the owning node (resolved
// through the client's ring mirror), so every flushed batch is
// single-hop: the receiving edge re-buckets only when the mirror is
// stale.

import (
	"context"
	"errors"
	"sync"
	"time"

	"clrdse/internal/fleet"
)

// ErrBatcherClosed reports a Submit on a closed batcher.
var ErrBatcherClosed = errors.New("client: batcher closed")

// defaults for NewBatcher's zero parameters.
const (
	defaultBatchSize = 64
	defaultBatchAge  = 5 * time.Millisecond
)

// batchAnswer is one submitted event's outcome: its slot of the batch
// response, or the whole batch's failure.
type batchAnswer struct {
	res fleet.BatchResultJSON
	err error
}

// batchItem is one buffered event with its submitter's answer channel.
type batchItem struct {
	ev fleet.BatchEventJSON
	ch chan batchAnswer
}

// batchGroup buffers events bound for one destination base URL.
type batchGroup struct {
	base  string
	items []batchItem
	// timer fires the age-based flush; flushed tells a stale timer it
	// lost the race against a count-based flush.
	timer   *time.Timer
	flushed bool
}

// Batcher coalesces events into batch calls; build one with
// Client.NewBatcher. Safe for concurrent use.
type Batcher struct {
	c   *Client
	max int
	age time.Duration

	mu     sync.Mutex
	groups map[string]*batchGroup
	closed bool
	wg     sync.WaitGroup // in-flight flushes
}

// NewBatcher returns a batcher that flushes a destination's buffer at
// max buffered events, or when its oldest buffered event turns age
// old, whichever comes first. max <= 0 selects 64 (capped at the
// server's fleet.MaxBatchEvents); age <= 0 selects 5ms — the age
// bound must stay positive or a final partial batch would never
// flush.
func (c *Client) NewBatcher(max int, age time.Duration) *Batcher {
	if max <= 0 {
		max = defaultBatchSize
	}
	if max > fleet.MaxBatchEvents {
		max = fleet.MaxBatchEvents
	}
	if age <= 0 {
		age = defaultBatchAge
	}
	return &Batcher{c: c, max: max, age: age, groups: make(map[string]*batchGroup)}
}

// Submit buffers one event and blocks until its batch is answered,
// returning this event's slot. A per-event failure is a non-200
// Status in the result, not an error; the error covers a closed
// batcher, a cancelled ctx, or the whole batch failing. ctx bounds
// only this submitter's wait — the batch call itself runs under the
// client's own attempt deadlines, so one submitter's cancellation
// never aborts its neighbours' events.
func (b *Batcher) Submit(ctx context.Context, ev fleet.BatchEventJSON) (*fleet.BatchResultJSON, error) {
	ch := make(chan batchAnswer, 1)
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil, ErrBatcherClosed
	}
	base := b.c.routeBase(ev.Device)
	g := b.groups[base]
	if g == nil {
		g = &batchGroup{base: base}
		b.groups[base] = g
	}
	g.items = append(g.items, batchItem{ev: ev, ch: ch})
	if len(g.items) >= b.max {
		b.flushLocked(g)
	} else if g.timer == nil {
		g.timer = time.AfterFunc(b.age, func() { b.flushAged(g) })
	}
	b.mu.Unlock()
	select {
	case a := <-ch:
		if a.err != nil {
			return nil, a.err
		}
		return &a.res, nil
	case <-ctx.Done():
		// The event is already buffered and will be decided; only this
		// submitter stops waiting for the answer.
		return nil, ctx.Err()
	}
}

// Close flushes every buffered event and waits for in-flight batches
// to answer. Further Submits fail with ErrBatcherClosed.
func (b *Batcher) Close() {
	b.mu.Lock()
	if !b.closed {
		b.closed = true
		for _, g := range b.groups {
			b.flushLocked(g)
		}
	}
	b.mu.Unlock()
	b.wg.Wait()
}

// flushAged is the timer path: a count-based flush (or Close) may
// have emptied the group already.
func (b *Batcher) flushAged(g *batchGroup) {
	b.mu.Lock()
	if !g.flushed {
		b.flushLocked(g)
	}
	b.mu.Unlock()
}

// flushLocked detaches the group and sends its batch on a goroutine.
// Callers hold b.mu.
func (b *Batcher) flushLocked(g *batchGroup) {
	g.flushed = true
	if g.timer != nil {
		g.timer.Stop()
	}
	delete(b.groups, g.base)
	if len(g.items) == 0 {
		return
	}
	items := g.items
	b.wg.Add(1)
	go b.send(items)
}

// send runs one batch call and fans its slots back out to the
// submitters. A whole-batch failure answers every slot with the
// error.
func (b *Batcher) send(items []batchItem) {
	defer b.wg.Done()
	events := make([]fleet.BatchEventJSON, len(items))
	for i := range items {
		events[i] = items[i].ev
	}
	results, err := b.c.DecideBatch(context.Background(), events)
	for i := range items {
		if err != nil {
			items[i].ch <- batchAnswer{err: err}
		} else {
			items[i].ch <- batchAnswer{res: results[i]}
		}
	}
}
