package fleet

// Tests for the registry's delivery semantics (sequence numbers,
// replay cache) and degraded-mode contract: a faulted or overrun
// decision path answers with the last known-good configuration and
// leaves the manager state untouched, so a retry re-decides for real.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"
)

// seqFixture registers one device on the shared test fixture.
func seqFixture(t *testing.T, hook DecideHook) (*Registry, string) {
	t.Helper()
	reg, err := NewRegistry(fleetDatabases(t), 4)
	if err != nil {
		t.Fatal(err)
	}
	reg.SetDecideHook(hook)
	const id = "seq-dev"
	if _, err := reg.Register(DeviceParams{
		ID: id, Database: "red", PRC: 0.5, Initial: looseSpec(getFixture(t).red),
	}); err != nil {
		t.Fatal(err)
	}
	return reg, id
}

func TestSeqReplayReturnsCachedDecision(t *testing.T) {
	reg, id := seqFixture(t, nil)
	spec := looseSpec(getFixture(t).red)
	ctx := context.Background()

	first, err := reg.DecideCtx(ctx, id, 1, spec)
	if err != nil {
		t.Fatal(err)
	}
	if first.Replayed {
		t.Fatal("first decision flagged as replay")
	}
	// The retry carries a different spec on purpose: the cache must
	// answer from the recorded decision, not re-decide.
	tighter := spec
	tighter.SMaxMs *= 0.9
	replay, err := reg.DecideCtx(ctx, id, 1, tighter)
	if err != nil {
		t.Fatal(err)
	}
	if !replay.Replayed {
		t.Fatal("retry of a decided seq not flagged Replayed")
	}
	if !reflect.DeepEqual(first.Decision, replay.Decision) {
		t.Fatalf("replayed decision differs:\nfirst:  %+v\nreplay: %+v", first.Decision, replay.Decision)
	}

	info, err := reg.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	if info.Stats.Decisions != 1 || info.Stats.Replays != 1 {
		t.Fatalf("stats = %+v, want 1 decision + 1 replay", info.Stats)
	}
}

func TestSeqStaleRejected(t *testing.T) {
	reg, id := seqFixture(t, nil)
	spec := looseSpec(getFixture(t).red)
	ctx := context.Background()
	for seq := uint64(1); seq <= 3; seq++ {
		if _, err := reg.DecideCtx(ctx, id, seq, spec); err != nil {
			t.Fatal(err)
		}
	}
	_, err := reg.DecideCtx(ctx, id, 2, spec)
	if !errors.Is(err, ErrStaleSeq) {
		t.Fatalf("err = %v, want ErrStaleSeq", err)
	}
	info, _ := reg.Get(id)
	if info.Stats.Decisions != 3 {
		t.Fatalf("stale event changed state: %d decisions", info.Stats.Decisions)
	}
}

func TestSeqZeroBypassesCache(t *testing.T) {
	reg, id := seqFixture(t, nil)
	spec := looseSpec(getFixture(t).red)
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		out, err := reg.DecideCtx(ctx, id, 0, spec)
		if err != nil {
			t.Fatal(err)
		}
		if out.Replayed {
			t.Fatal("seq 0 answered from the replay cache")
		}
	}
	info, _ := reg.Get(id)
	if info.Stats.Decisions != 3 {
		t.Fatalf("decisions = %d, want 3", info.Stats.Decisions)
	}
}

// TestHookFaultDegrades: a decision-path fault answers degraded at the
// current configuration without advancing the manager, and the next
// clean decision clears the device's degraded flag.
func TestHookFaultDegrades(t *testing.T) {
	fail := true
	reg, id := seqFixture(t, func(context.Context, string, uint64) error {
		if fail {
			return errors.New("injected: corrupted entry")
		}
		return nil
	})
	spec := looseSpec(getFixture(t).red)
	ctx := context.Background()

	before, _ := reg.Get(id)
	out, err := reg.DecideCtx(ctx, id, 1, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Degraded {
		t.Fatal("faulted decision not flagged Degraded")
	}
	if out.Decision.From != out.Decision.To || out.Decision.From != before.Point {
		t.Fatalf("degraded outcome moved the device: %+v (point was %d)", out.Decision, before.Point)
	}
	if reg.DegradedDevices() != 1 {
		t.Fatalf("DegradedDevices = %d, want 1", reg.DegradedDevices())
	}
	info, _ := reg.Get(id)
	if info.Stats.Decisions != 0 {
		t.Fatal("degraded answer advanced the manager")
	}
	if info.Stats.Degraded != 1 {
		t.Fatalf("Stats.Degraded = %d, want 1", info.Stats.Degraded)
	}

	// The retry of the same seq now decides for real and recovers.
	fail = false
	out, err = reg.DecideCtx(ctx, id, 1, spec)
	if err != nil {
		t.Fatal(err)
	}
	if out.Degraded || out.Replayed {
		t.Fatalf("retry outcome = %+v, want a fresh real decision", out)
	}
	if reg.DegradedDevices() != 0 {
		t.Fatalf("DegradedDevices = %d after recovery, want 0", reg.DegradedDevices())
	}
}

// TestDeadlineOverrunDegrades: a hook that outlives the decision
// deadline degrades the decision and counts a timeout.
func TestDeadlineOverrunDegrades(t *testing.T) {
	reg, id := seqFixture(t, func(ctx context.Context, _ string, _ uint64) error {
		<-ctx.Done()
		return ctx.Err()
	})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	out, err := reg.DecideCtx(ctx, id, 1, looseSpec(getFixture(t).red))
	if err != nil {
		t.Fatal(err)
	}
	if !out.Degraded {
		t.Fatal("deadline overrun not degraded")
	}
	var buf strings.Builder
	reg.Metrics().WritePrometheus(&buf)
	for _, want := range []string{
		"clr_fleet_decision_timeouts_total 1",
		"clr_fleet_degraded_decisions_total 1",
		"clr_fleet_degraded_devices 1",
	} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestWedgedDeviceDegradesConcurrentRequest: while one decision holds
// the device, a second request whose deadline expires waiting for the
// lock degrades instead of hanging — and the wedged device never
// blocks other devices.
func TestWedgedDeviceDegradesConcurrentRequest(t *testing.T) {
	entered := make(chan struct{})
	release := make(chan struct{})
	reg, id := seqFixture(t, func(ctx context.Context, _ string, seq uint64) error {
		if seq == 1 {
			close(entered)
			<-release
		}
		return nil
	})
	defer close(release)

	go reg.DecideCtx(context.Background(), id, 1, looseSpec(getFixture(t).red)) //nolint:errcheck
	<-entered

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	out, err := reg.DecideCtx(ctx, id, 2, looseSpec(getFixture(t).red))
	if err != nil {
		t.Fatal(err)
	}
	if !out.Degraded {
		t.Fatal("lock-starved request not degraded")
	}
}

// TestHealthzReadyzDistinction: a degraded fleet stays live (healthz
// 200) but loses readiness once the degraded fraction crosses the
// ceiling; draining flips readiness regardless.
func TestHealthzReadyzDistinction(t *testing.T) {
	srv, err := NewServer(ServerConfig{
		Databases:        fleetDatabases(t),
		DecideTimeout:    50 * time.Millisecond,
		ReadyMaxDegraded: 0.4,
		DecideHook: func(context.Context, string, uint64) error {
			return errors.New("injected fault")
		},
		Logger: quietLogger(),
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	get := func(path string) (int, map[string]any) {
		t.Helper()
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var body map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, body
	}

	if code, body := get("/healthz"); code != http.StatusOK || body["status"] != "ok" {
		t.Fatalf("healthz before traffic: %d %v", code, body)
	}
	if code, body := get("/readyz"); code != http.StatusOK || body["status"] != "ready" {
		t.Fatalf("readyz before traffic: %d %v", code, body)
	}

	// Degrade both devices through the HTTP decision path.
	for d := 0; d < 2; d++ {
		id := fmt.Sprintf("hz-%d", d)
		if _, err := srv.Registry().Register(DeviceParams{
			ID: id, Database: "red", PRC: 0.5, Initial: looseSpec(getFixture(t).red),
		}); err != nil {
			t.Fatal(err)
		}
		spec := looseSpec(getFixture(t).red)
		payload := fmt.Sprintf(`{"s_max_ms":%g,"f_min":%g,"seq":1}`, spec.SMaxMs, spec.FMin)
		resp, err := ts.Client().Post(ts.URL+"/v1/devices/"+id+"/qos",
			"application/json", strings.NewReader(payload))
		if err != nil {
			t.Fatal(err)
		}
		var dec DecisionJSON
		if err := json.NewDecoder(resp.Body).Decode(&dec); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || !dec.Degraded {
			t.Fatalf("qos %s: status %d degraded %v, want 200 + degraded", id, resp.StatusCode, dec.Degraded)
		}
	}

	// 2/2 degraded > 0.4: live but not ready.
	if code, body := get("/healthz"); code != http.StatusOK || body["status"] != "degraded" {
		t.Fatalf("healthz degraded: %d %v, want 200 degraded", code, body)
	}
	if code, body := get("/readyz"); code != http.StatusServiceUnavailable || body["status"] != "degraded" {
		t.Fatalf("readyz degraded: %d %v, want 503 degraded", code, body)
	}
}

// TestQoSRequestSeqOnWire: the HTTP layer threads the sequence number
// through to the replay cache and echoes it in the answer.
func TestQoSRequestSeqOnWire(t *testing.T) {
	srv, err := NewServer(ServerConfig{Databases: fleetDatabases(t), Logger: quietLogger()})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	if _, err := srv.Registry().Register(DeviceParams{
		ID: "wire", Database: "red", PRC: 0.5, Initial: looseSpec(getFixture(t).red),
	}); err != nil {
		t.Fatal(err)
	}

	spec := looseSpec(getFixture(t).red)
	payload := fmt.Sprintf(`{"s_max_ms":%g,"f_min":%g,"seq":7}`, spec.SMaxMs, spec.FMin)
	var answers []string
	for i := 0; i < 2; i++ {
		resp, err := ts.Client().Post(ts.URL+"/v1/devices/wire/qos",
			"application/json", strings.NewReader(payload))
		if err != nil {
			t.Fatal(err)
		}
		var dec DecisionJSON
		if err := json.NewDecoder(resp.Body).Decode(&dec); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if dec.Seq != 7 {
			t.Fatalf("answer seq = %d, want 7", dec.Seq)
		}
		b, _ := json.Marshal(dec)
		answers = append(answers, string(b))
	}
	if answers[0] != answers[1] {
		t.Fatalf("replayed answer not byte-identical:\n%s\n%s", answers[0], answers[1])
	}

	// A stale seq maps to 409 on the wire.
	stale := fmt.Sprintf(`{"s_max_ms":%g,"f_min":%g,"seq":6}`, spec.SMaxMs, spec.FMin)
	resp, err := ts.Client().Post(ts.URL+"/v1/devices/wire/qos",
		"application/json", strings.NewReader(stale))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("stale seq status = %d, want 409", resp.StatusCode)
	}
}
