package fleet

// Continuous-ReD serving support: versioned databases with dual-serve
// validation and atomic per-cohort hot swap.
//
// Each registered database name is a cohort. A cohort's state is three
// slots — active, candidate, previous — behind atomic pointers: the
// decide path only ever loads them, so installing a candidate, cutting
// over or rolling back is one pointer flip that never blocks traffic.
// Devices converge lazily: every decision (already holding the device
// semaphore) compares the database its manager was built against with
// the cohort's active slot and migrates itself when they differ, so a
// cutover is atomic at the cohort level (the flip) and per-device
// consistent (the swap happens between two decisions, never inside
// one).
//
// While a candidate is installed the fleet dual-serves: each decision
// is additionally scored against a per-device shadow manager booted on
// the candidate database. The shadow decision is compared with the
// active one by the *configuration* chosen (canonical mapping key, not
// point ID — IDs are version-relative) and counted as agreement or
// divergence. Shadow scoring never influences the served decision, the
// journal or the replay cache; it only feeds the clr_evolve_* metrics
// and the /debug/evolve diff. Once the shadow window shows enough
// agreement the evolve worker cuts the cohort over; the displaced
// version is retained for one-step rollback.
//
// Exactly-once survives every swap: the per-device replay cache is
// keyed by sequence number alone, independent of the database version,
// so a retry of a pre-cutover event is answered with the original
// (old-version) decision byte-for-byte.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"sync"
	"sync/atomic"

	"clrdse/internal/dse"
	"clrdse/internal/fleet/metrics"
	"clrdse/internal/mapping"
	"clrdse/internal/runtime"
)

// Evolution errors, distinguished so the HTTP layer and the evolve
// worker can map them onto statuses and retry policy.
var (
	// ErrNoCandidate reports a cutover or drop without an installed
	// candidate database.
	ErrNoCandidate = errors.New("fleet: no candidate database installed")
	// ErrCandidateVersion reports a proposal whose version does not
	// advance the active version.
	ErrCandidateVersion = errors.New("fleet: candidate version must advance the active version")
	// ErrNoPrevious reports a rollback without a retained previous
	// version (rollback is one-step: it cannot be repeated).
	ErrNoPrevious = errors.New("fleet: no previous database version to roll back to")
	// ErrVersionSkew reports a handoff bundle whose database version
	// differs from the importing node's active version — the cluster
	// must agree on the active version before devices move.
	ErrVersionSkew = errors.New("fleet: handoff bundle database version differs from active")
)

// dbState is one cohort's version state. The decide path reads the
// atomic slots without locks; swapMu serialises the swap operations
// (propose, cutover, rollback, drop) against each other.
type dbState struct {
	name   string
	swapMu sync.Mutex
	// active is the database every decision is served from. Never nil.
	active atomic.Pointer[NamedDatabase]
	// candidate, when non-nil, is the proposed next version being
	// shadow-served.
	candidate atomic.Pointer[NamedDatabase]
	// prev is the one-step rollback target, retained by Cutover and
	// consumed by Rollback. Guarded by swapMu.
	prev *NamedDatabase

	// vtActive is the cohort's published value table (nil until the
	// cohort worker first publishes); vtPrev is the one-step rollback
	// target, guarded by swapMu like prev. Devices re-seed their
	// agents lazily per decision (see syncValueTable).
	vtActive atomic.Pointer[runtime.ValueTable]
	vtPrev   *runtime.ValueTable

	// window accumulates the shadow scores judging the currently
	// installed candidate. ProposeDatabase installs a fresh window
	// object together with its candidate, and shadowScore only counts
	// into a window whose cand field matches the candidate it actually
	// scored — so a score racing a re-propose lands in the discarded
	// old window instead of polluting the new candidate's empty one.
	// The window outlives its candidate (cutover and drop leave it in
	// place, frozen) so /debug/evolve keeps showing the last verdict.
	window atomic.Pointer[shadowWindow]

	activeVer *metrics.Gauge
	candVer   *metrics.Gauge
	vtVer     *metrics.Gauge
}

// shadowWindow is the agreement/divergence accounting for exactly one
// candidate database. Tying the counters to the candidate object (not
// the cohort) makes the propose/score race benign: counts can only
// ever land in the window created for the candidate that was scored.
type shadowWindow struct {
	// cand is the candidate this window judges.
	cand *NamedDatabase

	events  atomic.Uint64
	agree   atomic.Uint64
	diverge atomic.Uint64

	// sampleMu guards samples, a small ring of recent divergences for
	// /debug/evolve.
	sampleMu sync.Mutex
	samples  []DivergenceSample
}

// maxDivergenceSamples bounds the per-cohort diff ring exposed on
// /debug/evolve.
const maxDivergenceSamples = 32

// DivergenceSample is one shadow decision that chose a different
// configuration than the active database did.
type DivergenceSample struct {
	Device string `json:"device"`
	Seq    uint64 `json:"seq,omitempty"`
	// ActiveTo/ShadowTo are the chosen point IDs in their respective
	// versions; the versions disambiguate them.
	ActiveTo      int    `json:"active_to"`
	ShadowTo      int    `json:"shadow_to"`
	ActiveVersion uint64 `json:"active_version"`
	ShadowVersion uint64 `json:"shadow_version"`
}

// EvolveStatus is one cohort's version and shadow-window snapshot —
// the body of /debug/evolve and the evolve worker's decision input.
type EvolveStatus struct {
	Database      string `json:"database"`
	ActiveVersion uint64 `json:"active_version"`
	ActivePoints  int    `json:"active_points"`
	// Candidate fields are meaningful only when HasCandidate.
	HasCandidate     bool   `json:"has_candidate"`
	CandidateVersion uint64 `json:"candidate_version,omitempty"`
	CandidatePoints  int    `json:"candidate_points,omitempty"`
	// Previous fields are meaningful only when HasPrevious.
	HasPrevious     bool   `json:"has_previous"`
	PreviousVersion uint64 `json:"previous_version,omitempty"`
	// ActiveFingerprint and CandidateFingerprint are the content
	// fingerprints of the respective databases (see Fingerprint) —
	// what the cluster layer compares, alongside the version numbers,
	// to decide whether two nodes really serve the same database.
	ActiveFingerprint    uint64 `json:"active_fingerprint"`
	CandidateFingerprint uint64 `json:"candidate_fingerprint,omitempty"`
	// Shadow window counters for the current candidate.
	ShadowEvents uint64 `json:"shadow_events"`
	Agreements   uint64 `json:"agreements"`
	Divergences  uint64 `json:"divergences"`
	// Agreement is Agreements/ShadowEvents (0 with an empty window).
	Agreement float64 `json:"agreement"`
	// Samples are the most recent divergences, oldest first.
	Samples []DivergenceSample `json:"samples,omitempty"`
}

func (w *shadowWindow) addSample(s DivergenceSample) {
	w.sampleMu.Lock()
	if len(w.samples) >= maxDivergenceSamples {
		copy(w.samples, w.samples[1:])
		w.samples = w.samples[:len(w.samples)-1]
	}
	w.samples = append(w.samples, s)
	w.sampleMu.Unlock()
}

// build precomputes the database's derived read-only state: the
// pairwise dRC matrix, the per-point canonical mapping keys (shadow
// agreement and migration remapping compare configurations, not
// version-relative point IDs), and the content fingerprint over both
// keys and metrics.
func (n *NamedDatabase) build() {
	maps := n.DB.Mappings()
	n.matrix = mapping.NewDRCMatrix(n.Space, maps)
	n.keys = make([]string, len(maps))
	n.keyIdx = make(map[string]int, len(maps))
	h := fnv.New64a()
	var buf [8]byte
	for i, m := range maps {
		n.keys[i] = m.Key()
		if _, dup := n.keyIdx[n.keys[i]]; !dup {
			n.keyIdx[n.keys[i]] = i
		}
		h.Write([]byte(n.keys[i]))
		h.Write([]byte{0})
		p := n.DB.Points[i]
		for _, v := range [...]float64{p.MakespanMs, p.Reliability, p.EnergyMJ, p.PeakPowerW, p.MTTFMs} {
			binary.BigEndian.PutUint64(buf[:], math.Float64bits(v))
			h.Write(buf[:])
		}
	}
	n.fp = h.Sum64()
}

// Fingerprint is the database's content hash: FNV-1a over every stored
// point's canonical mapping key and metric values, in ID order (the
// version number is deliberately excluded — it is compared separately).
// Two NamedDatabases decide identically only if their fingerprints
// match, so the cluster layer requires fingerprint equality — not just
// version-number equality — before treating two nodes as serving the
// same database: each node's evolve worker proposes from its own local
// journal, so two nodes can legitimately hold different databases both
// numbered active+1.
func (n *NamedDatabase) Fingerprint() uint64 { return n.fp }

// ProposeDatabase installs db as the named cohort's candidate version
// and starts a fresh shadow window. The candidate must validate
// against the cohort's mapping space and its Version must advance the
// active version. A candidate already installed is replaced (its
// window discarded). Devices pick the new candidate up lazily on their
// next decision.
func (r *Registry) ProposeDatabase(name string, db *dse.Database) error {
	st, ok := r.dbs[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoDatabase, name)
	}
	if db == nil {
		return fmt.Errorf("fleet: propose %q: nil database", name)
	}
	st.swapMu.Lock()
	defer st.swapMu.Unlock()
	active := st.active.Load()
	if db.Version <= active.DB.Version {
		return fmt.Errorf("%w: candidate v%d vs active v%d", ErrCandidateVersion, db.Version, active.DB.Version)
	}
	if err := db.Validate(active.Space); err != nil {
		return fmt.Errorf("fleet: propose %q: %w", name, err)
	}
	cand := &NamedDatabase{Name: name, DB: db, Space: active.Space}
	cand.build()
	// The fresh window is installed before the candidate it judges: a
	// racing shadowScore can then never observe the new candidate with
	// the old window still in place (scores for the old candidate land
	// in the old window object, which is dropped here with it).
	st.window.Store(&shadowWindow{cand: cand})
	st.candidate.Store(cand)
	st.candVer.Set(int64(db.Version))
	r.evolveProposals.Inc()
	return nil
}

// CutoverDatabase atomically promotes the cohort's candidate to
// active, retaining the displaced version for one-step rollback. The
// flip is a pointer swap: in-flight decisions complete against the
// version they loaded, and every device migrates (adopting its shadow
// manager's already-tracked state) on its next decision.
func (r *Registry) CutoverDatabase(name string) error {
	st, ok := r.dbs[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoDatabase, name)
	}
	st.swapMu.Lock()
	defer st.swapMu.Unlock()
	cand := st.candidate.Load()
	if cand == nil {
		return fmt.Errorf("%w: %q", ErrNoCandidate, name)
	}
	st.prev = st.active.Load()
	st.active.Store(cand)
	st.candidate.Store(nil)
	st.activeVer.Set(int64(cand.DB.Version))
	st.candVer.Set(0)
	r.evolveCutovers.Inc()
	return nil
}

// AdoptDatabase installs db as the cohort's active version
// immediately, without shadow validation — the cluster catch-up path.
// Once any node cuts over, every peer's version-agreement check fails
// until it serves the same database; without a way to install the
// winner the cluster would wedge in permanent disagreement, deferring
// all further cutovers and failing every cross-node handoff. A peer
// that observes a node ahead of it therefore fetches that node's
// active database and adopts those exact bytes here.
//
// The adopted version must not be behind the active one; adopting the
// active database itself (same version, same content fingerprint) is
// an idempotent no-op. Equal version with a different fingerprint is
// accepted — the tiebreak for two nodes that independently cut over to
// divergent databases sharing a version number. Any installed
// candidate is dropped (its shadow window judged a proposal that has
// been overtaken), and the displaced active version is retained for
// one-step rollback. Devices converge lazily, exactly as after a
// cutover.
func (r *Registry) AdoptDatabase(name string, db *dse.Database) error {
	st, ok := r.dbs[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoDatabase, name)
	}
	if db == nil {
		return fmt.Errorf("fleet: adopt %q: nil database", name)
	}
	st.swapMu.Lock()
	defer st.swapMu.Unlock()
	active := st.active.Load()
	if db.Version < active.DB.Version {
		return fmt.Errorf("%w: adopt v%d behind active v%d", ErrCandidateVersion, db.Version, active.DB.Version)
	}
	if err := db.Validate(active.Space); err != nil {
		return fmt.Errorf("fleet: adopt %q: %w", name, err)
	}
	next := &NamedDatabase{Name: name, DB: db, Space: active.Space}
	next.build()
	if db.Version == active.DB.Version && next.fp == active.fp {
		return nil // already serving exactly this database
	}
	st.prev = active
	st.active.Store(next)
	st.candidate.Store(nil)
	st.activeVer.Set(int64(db.Version))
	st.candVer.Set(0)
	r.evolveAdoptions.Inc()
	return nil
}

// RollbackDatabase reverts the cohort to the version displaced by the
// last cutover. Rollback is one-step — the reverted-from version is
// not retained — and drops any candidate installed since. Devices
// swap back to their retained pre-cutover managers on their next
// decision, so pre-cutover state (including AuRA value functions)
// survives a cutover-then-rollback round trip intact.
func (r *Registry) RollbackDatabase(name string) error {
	st, ok := r.dbs[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoDatabase, name)
	}
	st.swapMu.Lock()
	defer st.swapMu.Unlock()
	if st.prev == nil {
		return fmt.Errorf("%w: %q", ErrNoPrevious, name)
	}
	st.candidate.Store(nil)
	st.active.Store(st.prev)
	st.activeVer.Set(int64(st.prev.DB.Version))
	st.candVer.Set(0)
	st.prev = nil
	r.evolveRollbacks.Inc()
	return nil
}

// DropCandidate withdraws the cohort's candidate without a cutover —
// the evolve worker's reject path when the shadow window shows too
// much divergence. Devices discard their shadow managers on their next
// decision.
func (r *Registry) DropCandidate(name string) error {
	st, ok := r.dbs[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoDatabase, name)
	}
	st.swapMu.Lock()
	defer st.swapMu.Unlock()
	if st.candidate.Load() == nil {
		return fmt.Errorf("%w: %q", ErrNoCandidate, name)
	}
	st.candidate.Store(nil)
	st.candVer.Set(0)
	r.evolveDropped.Inc()
	return nil
}

// ActiveDatabase returns the cohort's currently served database.
func (r *Registry) ActiveDatabase(name string) (*dse.Database, error) {
	st, ok := r.dbs[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoDatabase, name)
	}
	return st.active.Load().DB, nil
}

// ActiveSnapshot returns the cohort's currently served database
// together with its content fingerprint, as one atomic snapshot — the
// read side of the cluster catch-up path, where a version/fingerprint
// pair read across two calls could straddle a concurrent swap.
func (r *Registry) ActiveSnapshot(name string) (*dse.Database, uint64, error) {
	st, ok := r.dbs[name]
	if !ok {
		return nil, 0, fmt.Errorf("%w: %q", ErrNoDatabase, name)
	}
	n := st.active.Load()
	return n.DB, n.fp, nil
}

// EvolveStatus snapshots one cohort's version and shadow-window state.
func (r *Registry) EvolveStatus(name string) (EvolveStatus, error) {
	st, ok := r.dbs[name]
	if !ok {
		return EvolveStatus{}, fmt.Errorf("%w: %q", ErrNoDatabase, name)
	}
	return st.status(), nil
}

// EvolveStatuses snapshots every cohort, in registration order.
func (r *Registry) EvolveStatuses() []EvolveStatus {
	out := make([]EvolveStatus, 0, len(r.names))
	for _, name := range r.names {
		out = append(out, r.dbs[name].status())
	}
	return out
}

func (st *dbState) status() EvolveStatus {
	st.swapMu.Lock()
	active := st.active.Load()
	cand := st.candidate.Load()
	prev := st.prev
	st.swapMu.Unlock()
	s := EvolveStatus{
		Database:          st.name,
		ActiveVersion:     active.DB.Version,
		ActivePoints:      active.DB.Len(),
		ActiveFingerprint: active.fp,
	}
	if cand != nil {
		s.HasCandidate = true
		s.CandidateVersion = cand.DB.Version
		s.CandidatePoints = cand.DB.Len()
		s.CandidateFingerprint = cand.fp
	}
	if prev != nil {
		s.HasPrevious = true
		s.PreviousVersion = prev.DB.Version
	}
	if win := st.window.Load(); win != nil {
		s.ShadowEvents = win.events.Load()
		s.Agreements = win.agree.Load()
		s.Divergences = win.diverge.Load()
		win.sampleMu.Lock()
		s.Samples = append([]DivergenceSample(nil), win.samples...)
		win.sampleMu.Unlock()
	}
	if s.ShadowEvents > 0 {
		s.Agreement = float64(s.Agreements) / float64(s.ShadowEvents)
	}
	return s
}

// newManagerOn boots a fresh manager for the device parameters against
// the given database version.
func newManagerOn(n *NamedDatabase, p DeviceParams, boot runtime.QoSSpec) (*runtime.Manager, error) {
	mp := runtime.ManagerParams{
		DB:                     n.DB,
		Space:                  n.Space,
		Matrix:                 n.matrix,
		PRC:                    p.PRC,
		Trigger:                p.Trigger,
		Policy:                 p.Policy,
		MeanInterArrivalCycles: p.MeanInterArrivalCycles,
	}
	if p.Gamma > 0 || p.WithAgent {
		mp.Agent = runtime.NewAgentForDB(n.DB, p.Gamma, 0)
	}
	return runtime.NewManager(mp, boot)
}

// bootSpec is the specification a version migration boots replacement
// managers with: the device's last observed spec when one exists (its
// empirical operating point), the registration spec otherwise. Callers
// hold the device semaphore.
func (d *device) bootSpec() runtime.QoSSpec {
	if d.haveSpec {
		return d.lastSpec
	}
	return d.params.Initial
}

// managerTracking boots a manager on n and aligns it with the device's
// current trajectory: the configuration in force is remapped into n by
// its canonical mapping key (version-independent), and the event clock
// is carried over. When the current configuration does not exist in n
// the manager keeps its boot choice for the device's operating spec —
// the closest n offers. An AuRA agent starts from n's stay-put prior;
// cross-version value transfer is undefined (the point sets differ).
// Callers hold the device semaphore.
func (d *device) managerTracking(n *NamedDatabase) (*runtime.Manager, error) {
	mgr, err := newManagerOn(n, d.params, d.bootSpec())
	if err != nil {
		return nil, err
	}
	old := d.mgr.Load()
	cur := mgr.Current()
	if idx, ok := n.keyIdx[d.db.Load().keys[old.Current()]]; ok {
		cur = idx
	}
	if err := mgr.Restore(cur, old.Events()); err != nil {
		return nil, err
	}
	return mgr, nil
}

// syncVersion converges the device onto its cohort's current active
// and candidate versions. The caller holds the device semaphore, so
// the manager swaps happen between decisions, never inside one. It
// never fails the decision: if a replacement manager cannot be built
// (which requires an invalid database, excluded by ProposeDatabase)
// the device keeps serving its current version — journal stamps stay
// truthful — and retries on its next decision.
func (r *Registry) syncVersion(d *device) {
	active := d.state.active.Load()
	if d.db.Load() != active {
		switch {
		case d.shadowDB == active:
			// Cutover to the candidate this device was shadowing: adopt
			// the shadow manager, whose state already tracks every
			// shadowed event, and retain the displaced manager for
			// rollback.
			d.prevMgr, d.prevDB = d.mgr.Load(), d.db.Load()
			d.mgr.Store(d.shadow)
			d.db.Store(d.shadowDB)
			d.shadow, d.shadowDB = nil, nil
		case d.prevDB == active:
			// One-step rollback: resume the retained pre-cutover
			// manager exactly where the cutover left it.
			d.mgr.Store(d.prevMgr)
			d.db.Store(d.prevDB)
			d.prevMgr, d.prevDB = nil, nil
			d.shadow, d.shadowDB = nil, nil
		default:
			// The active version changed while this device held neither
			// a matching shadow nor a matching previous manager (it
			// registered or was imported across the swap): rebuild
			// against the active version, tracking the current
			// configuration by mapping key.
			if mgr, err := d.managerTracking(active); err == nil {
				d.prevMgr, d.prevDB = d.mgr.Load(), d.db.Load()
				d.mgr.Store(mgr)
				d.db.Store(active)
				d.shadow, d.shadowDB = nil, nil
			}
		}
	}
	cand := d.state.candidate.Load()
	switch {
	case cand == nil:
		d.shadow, d.shadowDB = nil, nil
	case d.shadowDB != cand:
		if mgr, err := d.managerTracking(cand); err == nil {
			d.shadow, d.shadowDB = mgr, cand
		} else {
			d.shadow, d.shadowDB = nil, nil
		}
	}
}

// shadowScore dual-serves one decided event against the device's
// shadow manager and accounts agreement or divergence. It runs under
// the device semaphore, after the real decision committed; the shadow
// decision is compared by chosen configuration (mapping key) and is
// never served, journaled or cached.
//
// For agentless (uRA) devices the shadow decision is a pure function
// of (current shadow point, spec), so a one-entry memo short-circuits
// the common repeated-spec case: the cached choice is replayed, which
// advances the shadow's event clock exactly as a full decision would.
// An AuRA shadow (Gamma > 0) never uses the memo — its learned values
// feed the scoring, so identical inputs may choose differently.
func (r *Registry) shadowScore(d *device, seq uint64, spec runtime.QoSSpec, dec runtime.Decision) {
	if d.shadow == nil {
		return
	}
	cand := d.shadowDB
	cur := d.shadow.Current()
	var shadowTo int
	if d.params.Gamma == 0 && d.memoMgr == d.shadow && d.memoFrom == cur && d.memoSpec == spec {
		shadowTo = d.memoTo
		if err := d.shadow.Replay(shadowTo, 0); err != nil {
			// Unreachable for a memo recorded against this manager;
			// fall back to a full decision if it ever happens.
			shadowTo = d.shadow.OnQoSChange(spec).To
		}
	} else {
		shadowTo = d.shadow.OnQoSChange(spec).To
		d.memoMgr, d.memoFrom, d.memoSpec, d.memoTo = d.shadow, cur, spec, shadowTo
	}
	st := d.state
	// Count only into the window created for the candidate this score
	// judged: the window pointer keys the counters to one candidate, so
	// a re-propose racing this score can at worst send the counts into
	// the discarded old window — never into the new candidate's fresh
	// one. The candidate check keeps a withdrawn candidate's frozen
	// window from accumulating further (devices drop their shadow
	// managers on their next decision anyway).
	win := st.window.Load()
	if win == nil || win.cand != cand || st.candidate.Load() != cand {
		return
	}
	win.events.Add(1)
	r.evolveShadowEvents.Inc()
	db := d.db.Load()
	if cand.keys[shadowTo] == db.keys[dec.To] {
		win.agree.Add(1)
		r.evolveShadowAgree.Inc()
		return
	}
	win.diverge.Add(1)
	r.evolveShadowDiverge.Inc()
	win.addSample(DivergenceSample{
		Device:        d.id,
		Seq:           seq,
		ActiveTo:      dec.To,
		ShadowTo:      shadowTo,
		ActiveVersion: db.DB.Version,
		ShadowVersion: cand.DB.Version,
	})
}
