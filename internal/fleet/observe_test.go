package fleet

// Tests of the fleet's observability surface: the trace edge in the
// HTTP middleware, the per-shard decision journal and its
// /debug/decisions view, and the stage-latency metrics.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"clrdse/internal/obs"
)

// getJSON fetches a URL and decodes the body, enforcing the status.
func getJSON(url string, wantStatus int, out any) (http.Header, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		var apiErr ErrorJSON
		_ = json.NewDecoder(resp.Body).Decode(&apiErr)
		return resp.Header, fmt.Errorf("status %s: %s", resp.Status, apiErr.Error)
	}
	if out != nil {
		return resp.Header, json.NewDecoder(resp.Body).Decode(out)
	}
	return resp.Header, nil
}

func TestTraceHeaderEdge(t *testing.T) {
	_, base := bootServer(t)

	t.Run("valid header adopted and echoed", func(t *testing.T) {
		req, err := http.NewRequest(http.MethodGet, base+"/healthz", nil)
		if err != nil {
			t.Fatal(err)
		}
		const want = "00deadbeef00cafe"
		req.Header.Set(obs.TraceHeader, want)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if got := resp.Header.Get(obs.TraceHeader); got != want {
			t.Fatalf("trace header = %q, want adopted %q", got, want)
		}
	})

	t.Run("absent or invalid header minted", func(t *testing.T) {
		for _, bad := range []string{"", "not-a-trace", "ABCDEF0123456789"} {
			req, err := http.NewRequest(http.MethodGet, base+"/healthz", nil)
			if err != nil {
				t.Fatal(err)
			}
			if bad != "" {
				req.Header.Set(obs.TraceHeader, bad)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			got := obs.TraceID(resp.Header.Get(obs.TraceHeader))
			if !got.IsValid() {
				t.Fatalf("header %q: minted trace %q is not a valid trace ID", bad, got)
			}
			if string(got) == bad {
				t.Fatalf("invalid header %q was adopted instead of replaced", bad)
			}
		}
	})
}

// TestDebugDecisionsEndToEnd drives decisions over HTTP and checks
// the journal's /debug/decisions view: every decision appears exactly
// once, carries the trace ID the response echoed, and the device and
// limit filters narrow the answer.
func TestDebugDecisionsEndToEnd(t *testing.T) {
	srv, base := bootServer(t)
	f := getFixture(t)
	spec := looseSpec(f.red)

	devices := []string{"ed-0", "ed-1", "ed-2"}
	for _, id := range devices {
		err := postJSON(http.DefaultClient, base+"/v1/devices", RegisterRequest{
			ID: id, Database: "red",
			Initial: QoSSpecJSON{SMaxMs: spec.SMaxMs, FMin: spec.FMin},
		}, http.StatusCreated, nil)
		if err != nil {
			t.Fatal(err)
		}
	}

	// Each device decides 4 sequenced events; record the trace ID the
	// response echoed for (device, seq).
	const perDevice = 4
	traces := make(map[string]string)
	for _, id := range devices {
		for seq := uint64(1); seq <= perDevice; seq++ {
			body, err := json.Marshal(QoSRequest{
				QoSSpecJSON: QoSSpecJSON{SMaxMs: spec.SMaxMs, FMin: spec.FMin},
				Seq:         seq,
			})
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.Post(base+"/v1/devices/"+id+"/qos", "application/json",
				strings.NewReader(string(body)))
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("qos %s seq %d: status %s", id, seq, resp.Status)
			}
			traces[fmt.Sprintf("%s/%d", id, seq)] = resp.Header.Get(obs.TraceHeader)
		}
	}

	t.Run("fleet-wide view is complete and exactly once", func(t *testing.T) {
		var out DecisionsJSON
		if _, err := getJSON(base+"/debug/decisions", http.StatusOK, &out); err != nil {
			t.Fatal(err)
		}
		if out.Count != len(devices)*perDevice || len(out.Decisions) != out.Count {
			t.Fatalf("count = %d (len %d), want %d",
				out.Count, len(out.Decisions), len(devices)*perDevice)
		}
		seen := make(map[string]int)
		for _, e := range out.Decisions {
			key := fmt.Sprintf("%s/%d", e.Device, e.Seq)
			seen[key]++
			if want := traces[key]; string(e.TraceID) != want {
				t.Fatalf("%s: journal trace %q, response header said %q", key, e.TraceID, want)
			}
			if e.Candidates == 0 {
				t.Fatalf("%s: journal entry has no candidate count", key)
			}
			if len(e.Stages) == 0 {
				t.Fatalf("%s: journal entry has no stage spans", key)
			}
		}
		for key, n := range seen {
			if n != 1 {
				t.Fatalf("decision %s journaled %d times, want exactly once", key, n)
			}
		}
	})

	t.Run("device filter", func(t *testing.T) {
		var out DecisionsJSON
		if _, err := getJSON(base+"/debug/decisions?device=ed-1", http.StatusOK, &out); err != nil {
			t.Fatal(err)
		}
		if out.Device != "ed-1" || out.Count != perDevice {
			t.Fatalf("device=%q count=%d, want ed-1 with %d entries", out.Device, out.Count, perDevice)
		}
		for _, e := range out.Decisions {
			if e.Device != "ed-1" {
				t.Fatalf("filtered view leaked device %q", e.Device)
			}
		}
	})

	t.Run("limit keeps the newest", func(t *testing.T) {
		var out DecisionsJSON
		if _, err := getJSON(base+"/debug/decisions?device=ed-2&limit=2", http.StatusOK, &out); err != nil {
			t.Fatal(err)
		}
		if out.Count != 2 {
			t.Fatalf("limit=2 returned %d entries", out.Count)
		}
		for _, e := range out.Decisions {
			if e.Seq < perDevice-1 {
				t.Fatalf("limit kept seq %d, want the newest two (%d, %d)",
					e.Seq, perDevice-1, perDevice)
			}
		}
	})

	t.Run("invalid limit rejected", func(t *testing.T) {
		if _, err := getJSON(base+"/debug/decisions?limit=x", http.StatusBadRequest, nil); err != nil {
			t.Fatal(err)
		}
		if _, err := getJSON(base+"/debug/decisions?limit=-1", http.StatusBadRequest, nil); err != nil {
			t.Fatal(err)
		}
	})

	t.Run("replays are not journaled", func(t *testing.T) {
		// Retry an already-decided sequence: answered from the replay
		// cache, so the journal must not grow.
		before := srv.Registry().Decisions("", 0)
		err := postJSON(http.DefaultClient, base+"/v1/devices/ed-0/qos", QoSRequest{
			QoSSpecJSON: QoSSpecJSON{SMaxMs: spec.SMaxMs, FMin: spec.FMin},
			Seq:         perDevice,
		}, http.StatusOK, nil)
		if err != nil {
			t.Fatal(err)
		}
		after := srv.Registry().Decisions("", 0)
		if len(after) != len(before) {
			t.Fatalf("replay grew the journal from %d to %d entries", len(before), len(after))
		}
	})

	t.Run("stage metrics and explained counter exposed", func(t *testing.T) {
		resp, err := http.Get(base + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		text := string(raw)
		for _, st := range obs.Stages() {
			if st == obs.StageAgent {
				continue // no AuRA device registered here
			}
			want := fmt.Sprintf(`clr_decision_stage_seconds_count{stage=%q}`, st)
			if !strings.Contains(text, want) {
				t.Errorf("/metrics lacks %s", want)
			}
		}
		if !strings.Contains(text, "clr_decisions_explained_total") {
			t.Errorf("/metrics lacks clr_decisions_explained_total")
		}
	})
}

// TestJournalDegradedEntries checks the degraded path journals too:
// a faulted decision appears as a Degraded entry under the same
// sequence number, and the real retry afterwards appears exactly once
// non-degraded.
func TestJournalDegradedEntries(t *testing.T) {
	reg, err := NewRegistry(fleetDatabases(t), 4)
	if err != nil {
		t.Fatal(err)
	}
	fail := true
	reg.SetDecideHook(func(ctx context.Context, device string, seq uint64) error {
		if fail {
			return errors.New("injected fault")
		}
		return nil
	})
	f := getFixture(t)
	spec := looseSpec(f.red)
	if _, err := reg.Register(DeviceParams{ID: "dev", Database: "red", Initial: spec}); err != nil {
		t.Fatal(err)
	}

	ctx := obs.WithTrace(context.Background(), obs.TraceID("aaaabbbbccccdddd"))
	out, err := reg.DecideCtx(ctx, "dev", 1, spec)
	if err != nil || !out.Degraded {
		t.Fatalf("faulted decide: out=%+v err=%v, want degraded", out, err)
	}
	fail = false
	out, err = reg.DecideCtx(ctx, "dev", 1, spec)
	if err != nil || out.Degraded || out.Replayed {
		t.Fatalf("retry: out=%+v err=%v, want real decision", out, err)
	}

	entries := reg.Decisions("dev", 0)
	if len(entries) != 2 {
		t.Fatalf("journal has %d entries, want degraded + real = 2", len(entries))
	}
	var degraded, real int
	for _, e := range entries {
		if e.Seq != 1 || e.Device != "dev" {
			t.Fatalf("unexpected entry %+v", e)
		}
		if string(e.TraceID) != "aaaabbbbccccdddd" {
			t.Fatalf("entry trace %q, want the context's ID", e.TraceID)
		}
		if e.Degraded {
			degraded++
			if e.From != e.To || e.Candidates != 0 || len(e.Stages) != 0 {
				t.Fatalf("degraded entry should be a stay-put with no detail: %+v", e)
			}
		} else {
			real++
		}
	}
	if degraded != 1 || real != 1 {
		t.Fatalf("degraded=%d real=%d, want 1 and 1", degraded, real)
	}
}

// TestSetJournalCapBounds checks the flight recorder really is a
// ring: with a cap of 2, only the newest two decisions survive.
func TestSetJournalCapBounds(t *testing.T) {
	reg, err := NewRegistry(fleetDatabases(t), 1)
	if err != nil {
		t.Fatal(err)
	}
	reg.SetJournalCap(2)
	f := getFixture(t)
	spec := looseSpec(f.red)
	if _, err := reg.Register(DeviceParams{ID: "dev", Database: "red", Initial: spec}); err != nil {
		t.Fatal(err)
	}
	for seq := uint64(1); seq <= 5; seq++ {
		if _, err := reg.DecideCtx(context.Background(), "dev", seq, spec); err != nil {
			t.Fatal(err)
		}
	}
	entries := reg.Decisions("dev", 0)
	if len(entries) != 2 || entries[0].Seq != 4 || entries[1].Seq != 5 {
		t.Fatalf("cap-2 journal = %+v, want seqs [4 5]", entries)
	}
}

// TestMinterSeedReproducible pins the deterministic minting contract
// at the server level: two servers with the same TraceSeed mint the
// same trace IDs for the same request sequence.
func TestMinterSeedReproducible(t *testing.T) {
	mint := func(seed int64) []string {
		srv, err := NewServer(ServerConfig{
			Databases: fleetDatabases(t),
			Logger:    quietLogger(),
			TraceSeed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		var ids []string
		for i := 0; i < 3; i++ {
			req, err := http.NewRequest(http.MethodGet, "/healthz", nil)
			if err != nil {
				t.Fatal(err)
			}
			w := httptest.NewRecorder()
			srv.Handler().ServeHTTP(w, req)
			ids = append(ids, w.Header().Get(obs.TraceHeader))
		}
		return ids
	}
	a, b := mint(7), mint(7)
	c := mint(8)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed minted %q vs %q at request %d", a[i], b[i], i)
		}
		if a[i] == c[i] {
			t.Fatalf("different seeds minted the same ID %q at request %d", a[i], i)
		}
	}
}

// TestDecideDirectCallerNoTrace checks the registry tolerates callers
// that bypass the HTTP edge: no trace in the context journals an
// entry with an empty trace ID rather than minting mid-stack.
func TestDecideDirectCallerNoTrace(t *testing.T) {
	reg, err := NewRegistry(fleetDatabases(t), 1)
	if err != nil {
		t.Fatal(err)
	}
	f := getFixture(t)
	spec := looseSpec(f.red)
	if _, err := reg.Register(DeviceParams{ID: "dev", Database: "red", Initial: spec}); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Decide("dev", spec); err != nil {
		t.Fatal(err)
	}
	entries := reg.Decisions("dev", 0)
	if len(entries) != 1 {
		t.Fatalf("journal has %d entries, want 1", len(entries))
	}
	if entries[0].TraceID != "" {
		t.Fatalf("direct call minted trace %q mid-stack; want empty", entries[0].TraceID)
	}
}
