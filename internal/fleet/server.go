package fleet

// The HTTP/JSON front of the decision service. One Server hosts one
// Registry; handlers are thin translations between the wire types of
// api.go and the registry, with the operational wrapping a
// long-running service needs: per-endpoint request accounting, a
// request body cap, structured request logging, server-side timeouts
// and graceful drain on shutdown.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"clrdse/internal/fleet/metrics"
	"clrdse/internal/obs"
)

// ServerConfig configures a fleet decision server.
type ServerConfig struct {
	// Databases are the decision bases devices can register against.
	Databases []NamedDatabase
	// Shards is the registry shard count (0 selects DefaultShards).
	Shards int
	// MaxBodyBytes caps request bodies (0 selects 1 MiB).
	MaxBodyBytes int64
	// ShutdownGrace bounds how long Shutdown waits for in-flight
	// decisions to drain (0 selects 10s).
	ShutdownGrace time.Duration
	// DecideTimeout bounds one QoS decision, including waiting for
	// the device's lock; past it the device answers degraded with its
	// last known-good configuration (0 selects 2s).
	DecideTimeout time.Duration
	// DecideHook optionally fault-checks the decision path (chaos
	// testing); see DecideHook.
	DecideHook DecideHook
	// ReadyMaxDegraded is the fraction of degraded devices above
	// which /readyz reports 503 (0 selects 0.5).
	ReadyMaxDegraded float64
	// Logger receives structured request logs (nil selects
	// slog.Default()). The server wraps the logger's handler with
	// obs.NewHandler, so every line carries the request's trace_id.
	Logger *slog.Logger
	// JournalCap sizes each registry shard's decision journal
	// (<= 0 selects obs.DefaultJournalCap).
	JournalCap int
	// TraceSeed seeds the trace-ID minter used for requests that
	// arrive without an X-Clr-Trace-Id header; the same seed mints the
	// same ID sequence, keeping traced soak runs reproducible.
	TraceSeed int64
}

// Server is the fleet decision service.
type Server struct {
	reg       *Registry
	log       *slog.Logger
	minter    *obs.Minter
	maxBody   int64
	grace     time.Duration
	decideTO  time.Duration
	readyFrac float64
	draining  atomic.Bool
	handler   http.Handler
	httpSrv   *http.Server
	reqCount  map[string]*metrics.Counter
}

// NewServer validates the configuration (including every database)
// and builds the service.
func NewServer(cfg ServerConfig) (*Server, error) {
	reg, err := NewRegistry(cfg.Databases, cfg.Shards)
	if err != nil {
		return nil, err
	}
	reg.SetDecideHook(cfg.DecideHook)
	reg.SetJournalCap(cfg.JournalCap)
	s := &Server{
		reg:       reg,
		log:       cfg.Logger,
		minter:    obs.NewMinter(cfg.TraceSeed),
		maxBody:   cfg.MaxBodyBytes,
		grace:     cfg.ShutdownGrace,
		decideTO:  cfg.DecideTimeout,
		readyFrac: cfg.ReadyMaxDegraded,
		reqCount:  make(map[string]*metrics.Counter),
	}
	if s.log == nil {
		s.log = slog.Default()
	}
	// Stamp every request log line with its trace ID.
	s.log = slog.New(obs.NewHandler(s.log.Handler()))
	if s.maxBody <= 0 {
		s.maxBody = 1 << 20
	}
	if s.grace <= 0 {
		s.grace = 10 * time.Second
	}
	if s.decideTO <= 0 {
		s.decideTO = 2 * time.Second
	}
	if s.readyFrac <= 0 {
		s.readyFrac = 0.5
	}
	s.handler = s.buildMux()
	s.httpSrv = s.newHTTPServer()
	return s, nil
}

// Registry exposes the underlying device registry, so embedders can
// pre-register devices or inspect the fleet without going through
// HTTP.
func (s *Server) Registry() *Registry { return s.reg }

// Handler returns the service's HTTP handler (for tests and embedders
// that bring their own http.Server).
func (s *Server) Handler() http.Handler { return s.handler }

// Wrap interposes middleware around the service's handler — the
// cluster layer's request router, a chaos injector. It must be called
// before Serve/Run (the handler is read without a lock once serving).
func (s *Server) Wrap(mw func(http.Handler) http.Handler) {
	s.handler = mw(s.handler)
	s.httpSrv.Handler = s.handler
}

// buildMux wires the v1 routes, each wrapped with request accounting
// and logging.
func (s *Server) buildMux() http.Handler {
	mux := http.NewServeMux()
	route := func(pattern, name string, h http.HandlerFunc) {
		c := s.reg.met.Counter("clr_http_requests_total",
			"Requests per endpoint.", "endpoint", name)
		s.reqCount[name] = c
		mux.Handle(pattern, s.wrap(name, c, h))
	}
	route("POST /v1/devices", "register", s.handleRegister)
	route("POST /v1/devices/{id}/qos", "qos", s.handleQoS)
	route("GET /v1/devices/{id}", "get_device", s.handleGetDevice)
	route("DELETE /v1/devices/{id}", "delete_device", s.handleDeleteDevice)
	route("GET /v1/databases", "databases", s.handleDatabases)
	route("GET /healthz", "healthz", s.handleHealthz)
	route("GET /readyz", "readyz", s.handleReadyz)
	route("GET /metrics", "metrics", s.handleMetrics)
	route("GET /debug/decisions", "debug_decisions", s.handleDecisions)
	return mux
}

// statusWriter captures the response code for the request log.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// wrap applies the per-endpoint middleware: trace propagation, body
// cap, request counter, structured log line. This is the service's
// trace edge: a valid X-Clr-Trace-Id header is adopted (so client
// retries and multi-hop calls correlate), anything else is replaced
// by a minted ID; the ID rides the request context from here and is
// echoed back in the response header.
func (s *Server) wrap(name string, c *metrics.Counter, h http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		c.Inc()
		if r.Body != nil {
			r.Body = http.MaxBytesReader(w, r.Body, s.maxBody)
		}
		trace, err := obs.ParseTraceID(r.Header.Get(obs.TraceHeader))
		if err != nil {
			trace = s.minter.Mint()
		}
		r = r.WithContext(obs.WithTrace(r.Context(), trace))
		w.Header().Set(obs.TraceHeader, string(trace))
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		h(sw, r)
		s.log.InfoContext(r.Context(), "request",
			"endpoint", name,
			"method", r.Method,
			"path", r.URL.Path,
			"status", sw.status,
			"duration_us", time.Since(start).Microseconds(),
			"remote", r.RemoteAddr,
		)
	})
}

// writeJSON renders a response body with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeError maps registry and validation errors onto status codes.
func writeError(w http.ResponseWriter, err error) {
	status := http.StatusBadRequest
	var maxBytes *http.MaxBytesError
	switch {
	case errors.Is(err, ErrNoDevice), errors.Is(err, ErrNoDatabase):
		status = http.StatusNotFound
	case errors.Is(err, ErrDeviceExists), errors.Is(err, ErrStaleSeq):
		status = http.StatusConflict
	case errors.As(err, &maxBytes):
		status = http.StatusRequestEntityTooLarge
	}
	writeJSON(w, status, ErrorJSON{Error: err.Error()})
}

// decodeJSON strictly parses a request body into v.
func decodeJSON(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("invalid request body: %w", err)
	}
	return nil
}

func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req RegisterRequest
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, err)
		return
	}
	params, err := req.Params()
	if err != nil {
		writeError(w, err)
		return
	}
	info, err := s.reg.Register(params)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, deviceJSON(info))
}

func (s *Server) handleQoS(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	var req QoSRequest
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, err)
		return
	}
	if err := req.validate(); err != nil {
		writeError(w, err)
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.decideTO)
	defer cancel()
	out, err := s.reg.DecideCtx(ctx, id, req.Seq, req.Spec())
	if err != nil {
		writeError(w, err)
		return
	}
	dj := decisionJSON(id, out.Decision)
	dj.Seq = req.Seq
	dj.Degraded = out.Degraded
	writeJSON(w, http.StatusOK, dj)
}

func (s *Server) handleGetDevice(w http.ResponseWriter, r *http.Request) {
	info, err := s.reg.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, deviceJSON(info))
}

func (s *Server) handleDeleteDevice(w http.ResponseWriter, r *http.Request) {
	if err := s.reg.Remove(r.PathValue("id")); err != nil {
		writeError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleDatabases(w http.ResponseWriter, _ *http.Request) {
	dbs := s.reg.Databases()
	out := make([]DatabaseJSON, 0, len(dbs))
	for _, db := range dbs {
		out = append(out, databaseJSON(db))
	}
	writeJSON(w, http.StatusOK, out)
}

// handleHealthz is liveness: the process is up and serving. It stays
// 200 even when devices are degraded — a degraded fleet still answers
// (with last known-good configurations), so killing the process would
// only make things worse.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	status := "ok"
	if s.reg.DegradedDevices() > 0 {
		status = "degraded"
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":           status,
		"devices":          s.reg.Len(),
		"degraded_devices": s.reg.DegradedDevices(),
	})
}

// handleReadyz is readiness: whether this instance should receive new
// traffic. Unlike /healthz it turns 503 while draining and when the
// degraded-device fraction exceeds the configured ceiling, steering
// load balancers away while the instance recovers.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	n := s.reg.Len()
	deg := s.reg.DegradedDevices()
	body := map[string]any{"status": "ready", "devices": n, "degraded_devices": deg}
	switch {
	case s.draining.Load():
		body["status"] = "draining"
		writeJSON(w, http.StatusServiceUnavailable, body)
	case n > 0 && float64(deg) > s.readyFrac*float64(n):
		body["status"] = "degraded"
		writeJSON(w, http.StatusServiceUnavailable, body)
	default:
		writeJSON(w, http.StatusOK, body)
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.reg.met.WritePrometheus(w)
}

// handleDecisions serves the decision journal: every recent decision
// with its explanation (chosen point, candidate counts, score, stage
// latencies, trace ID). Query parameters: device filters to one
// device; limit caps the answer to the newest N entries (default
// 1000, 0 keeps the default).
func (s *Server) handleDecisions(w http.ResponseWriter, r *http.Request) {
	device := r.URL.Query().Get("device")
	limit := 1000
	if ls := r.URL.Query().Get("limit"); ls != "" {
		n, err := strconv.Atoi(ls)
		if err != nil || n < 0 {
			writeError(w, fmt.Errorf("invalid limit %q", ls))
			return
		}
		if n > 0 {
			limit = n
		}
	}
	entries := s.reg.Decisions(device, limit)
	writeJSON(w, http.StatusOK, DecisionsJSON{
		Count:     len(entries),
		Device:    device,
		Decisions: entries,
	})
}

// newHTTPServer applies the service's server-side timeouts.
func (s *Server) newHTTPServer() *http.Server {
	return &http.Server{
		Handler:           s.handler,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       15 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       120 * time.Second,
	}
}

// Serve accepts connections on l until Shutdown (or a listener
// error). It always returns a non-nil error; after Shutdown the error
// is http.ErrServerClosed.
func (s *Server) Serve(l net.Listener) error {
	return s.httpSrv.Serve(l)
}

// Shutdown gracefully stops the server, draining in-flight decisions
// for up to the configured grace period. /readyz flips to 503
// ("draining") for the duration, so load balancers stop routing here
// while in-flight decisions finish.
func (s *Server) Shutdown() error {
	s.draining.Store(true)
	ctx, cancel := context.WithTimeout(context.Background(), s.grace)
	defer cancel()
	return s.httpSrv.Shutdown(ctx)
}

// Run listens on addr and serves until ctx is cancelled (typically by
// signal.NotifyContext on SIGINT/SIGTERM), then drains in-flight
// requests and returns. A nil return means a clean shutdown.
func (s *Server) Run(ctx context.Context, addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.log.Info("fleet server listening", "addr", l.Addr().String(),
		"databases", len(s.reg.dbs), "shards", len(s.reg.shards))
	errc := make(chan error, 1)
	go func() { errc <- s.Serve(l) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		s.log.Info("fleet server draining", "grace", s.grace.String())
		if err := s.Shutdown(); err != nil {
			return err
		}
		<-errc // always http.ErrServerClosed after a clean Shutdown
		return nil
	}
}
