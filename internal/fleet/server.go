package fleet

// The HTTP/JSON front of the decision service. One Server hosts one
// Registry; handlers are thin translations between the wire types of
// api.go and the registry, with the operational wrapping a
// long-running service needs: per-endpoint request accounting, a
// request body cap, structured request logging, server-side timeouts
// and graceful drain on shutdown.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"clrdse/internal/fleet/metrics"
	"clrdse/internal/obs"
)

// ServerConfig configures a fleet decision server.
type ServerConfig struct {
	// Databases are the decision bases devices can register against.
	Databases []NamedDatabase
	// Shards is the registry shard count (0 selects DefaultShards).
	Shards int
	// MaxBodyBytes caps request bodies (0 selects 1 MiB).
	MaxBodyBytes int64
	// ShutdownGrace bounds how long Shutdown waits for in-flight
	// decisions to drain (0 selects 10s).
	ShutdownGrace time.Duration
	// DecideTimeout bounds one QoS decision, including waiting for
	// the device's lock; past it the device answers degraded with its
	// last known-good configuration (0 selects 2s).
	DecideTimeout time.Duration
	// DecideHook optionally fault-checks the decision path (chaos
	// testing); see DecideHook.
	DecideHook DecideHook
	// ReadyMaxDegraded is the fraction of degraded devices above
	// which /readyz reports 503 (0 selects 0.5).
	ReadyMaxDegraded float64
	// Logger receives structured request logs (nil selects
	// slog.Default()). The server wraps the logger's handler with
	// obs.NewHandler, so every line carries the request's trace_id.
	Logger *slog.Logger
	// JournalCap sizes each registry shard's decision journal
	// (<= 0 selects obs.DefaultJournalCap).
	JournalCap int
	// TraceSeed seeds the trace-ID minter used for requests that
	// arrive without an X-Clr-Trace-Id header; the same seed mints the
	// same ID sequence, keeping traced soak runs reproducible.
	TraceSeed int64
}

// Server is the fleet decision service.
type Server struct {
	reg       *Registry
	log       *slog.Logger
	minter    *obs.Minter
	maxBody   int64
	grace     time.Duration
	decideTO  time.Duration
	readyFrac float64
	draining  atomic.Bool
	handler   http.Handler
	httpSrv   *http.Server
	reqCount  map[string]*metrics.Counter

	batchEvents *metrics.Counter
}

// NewServer validates the configuration (including every database)
// and builds the service.
func NewServer(cfg ServerConfig) (*Server, error) {
	reg, err := NewRegistry(cfg.Databases, cfg.Shards)
	if err != nil {
		return nil, err
	}
	reg.SetDecideHook(cfg.DecideHook)
	reg.SetJournalCap(cfg.JournalCap)
	s := &Server{
		reg:       reg,
		log:       cfg.Logger,
		minter:    obs.NewMinter(cfg.TraceSeed),
		maxBody:   cfg.MaxBodyBytes,
		grace:     cfg.ShutdownGrace,
		decideTO:  cfg.DecideTimeout,
		readyFrac: cfg.ReadyMaxDegraded,
		reqCount:  make(map[string]*metrics.Counter),
	}
	if s.log == nil {
		s.log = slog.Default()
	}
	// Stamp every request log line with its trace ID.
	s.log = slog.New(obs.NewHandler(s.log.Handler()))
	if s.maxBody <= 0 {
		s.maxBody = 1 << 20
	}
	if s.grace <= 0 {
		s.grace = 10 * time.Second
	}
	if s.decideTO <= 0 {
		s.decideTO = 2 * time.Second
	}
	if s.readyFrac <= 0 {
		s.readyFrac = 0.5
	}
	s.handler = s.buildMux()
	s.httpSrv = s.newHTTPServer()
	return s, nil
}

// Registry exposes the underlying device registry, so embedders can
// pre-register devices or inspect the fleet without going through
// HTTP.
func (s *Server) Registry() *Registry { return s.reg }

// Handler returns the service's HTTP handler (for tests and embedders
// that bring their own http.Server).
func (s *Server) Handler() http.Handler { return s.handler }

// Wrap interposes middleware around the service's handler — the
// cluster layer's request router, a chaos injector. It must be called
// before Serve/Run (the handler is read without a lock once serving).
func (s *Server) Wrap(mw func(http.Handler) http.Handler) {
	s.handler = mw(s.handler)
	s.httpSrv.Handler = s.handler
}

// buildMux wires the v1 routes, each wrapped with request accounting
// and logging.
func (s *Server) buildMux() http.Handler {
	mux := http.NewServeMux()
	route := func(pattern, name string, h http.HandlerFunc) {
		c := s.reg.met.Counter("clr_http_requests_total",
			"Requests per endpoint.", "endpoint", name)
		s.reqCount[name] = c
		mux.Handle(pattern, s.wrap(name, c, h))
	}
	s.batchEvents = s.reg.met.Counter("clr_fleet_batch_events_total",
		"QoS events received via the batch decide endpoint.")
	route("POST /v1/devices", "register", s.handleRegister)
	route("POST /v1/devices/{id}/qos", "qos", s.handleQoS)
	// ":" is a literal in ServeMux patterns, so the AIP-style custom
	// verb is just a distinct path — it can never collide with a
	// device ID, whose routes all live under the "/v1/devices/" tree.
	route("POST /v1/devices:decide-batch", "decide_batch", s.handleDecideBatch)
	route("GET /v1/devices/{id}", "get_device", s.handleGetDevice)
	route("DELETE /v1/devices/{id}", "delete_device", s.handleDeleteDevice)
	route("GET /v1/databases", "databases", s.handleDatabases)
	route("GET /healthz", "healthz", s.handleHealthz)
	route("GET /readyz", "readyz", s.handleReadyz)
	route("GET /metrics", "metrics", s.handleMetrics)
	route("GET /debug/decisions", "debug_decisions", s.handleDecisions)
	route("GET /debug/evolve", "debug_evolve", s.handleEvolve)
	route("GET /debug/cohort", "debug_cohort", s.handleCohort)
	return mux
}

// statusWriter captures the response code for the request log.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// wrap applies the per-endpoint middleware: trace propagation, body
// cap, request counter, structured log line. This is the service's
// trace edge: a valid X-Clr-Trace-Id header is adopted (so client
// retries and multi-hop calls correlate), anything else is replaced
// by a minted ID; the ID rides the request context from here and is
// echoed back in the response header.
func (s *Server) wrap(name string, c *metrics.Counter, h http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		c.Inc()
		if r.Body != nil {
			r.Body = http.MaxBytesReader(w, r.Body, s.maxBody)
		}
		trace, err := obs.ParseTraceID(r.Header.Get(obs.TraceHeader))
		if err != nil {
			trace = s.minter.Mint()
		}
		r = r.WithContext(obs.WithTrace(r.Context(), trace))
		w.Header().Set(obs.TraceHeader, string(trace))
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		h(sw, r)
		s.log.InfoContext(r.Context(), "request",
			"endpoint", name,
			"method", r.Method,
			"path", r.URL.Path,
			"status", sw.status,
			"duration_us", time.Since(start).Microseconds(),
			"remote", r.RemoteAddr,
		)
	})
}

// jsonBuf is pooled response-encoding scratch: the encoder is bound to
// the buffer once, so a response costs zero encoder allocations and
// ships with an exact Content-Length.
type jsonBuf struct {
	buf bytes.Buffer
	enc *json.Encoder
}

var jsonBufPool = sync.Pool{New: func() any {
	jb := &jsonBuf{}
	jb.enc = json.NewEncoder(&jb.buf)
	return jb
}}

// writeJSON renders a response body with the given status. The bytes
// are identical to a plain json.NewEncoder(w).Encode(v) — the pooled
// buffer only changes where they are staged.
func writeJSON(w http.ResponseWriter, status int, v any) {
	jb := jsonBufPool.Get().(*jsonBuf)
	jb.buf.Reset()
	if err := jb.enc.Encode(v); err != nil {
		jsonBufPool.Put(jb)
		http.Error(w, `{"error":"response encoding failed"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(jb.buf.Len()))
	w.WriteHeader(status)
	//lint:allow errdrop a response-write failure means the client is gone; there is no one left to tell
	_, _ = w.Write(jb.buf.Bytes())
	jsonBufPool.Put(jb)
}

// statusFor maps registry and validation errors onto status codes —
// shared by whole-request errors (writeError) and the batch endpoint's
// per-event results.
func statusFor(err error) int {
	var maxBytes *http.MaxBytesError
	switch {
	case errors.Is(err, ErrNoDevice), errors.Is(err, ErrNoDatabase):
		return http.StatusNotFound
	case errors.Is(err, ErrDeviceExists), errors.Is(err, ErrStaleSeq),
		errors.Is(err, ErrVersionSkew), errors.Is(err, ErrCandidateVersion),
		errors.Is(err, ErrNoCandidate), errors.Is(err, ErrNoPrevious):
		return http.StatusConflict
	case errors.As(err, &maxBytes):
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

// writeError maps registry and validation errors onto status codes.
func writeError(w http.ResponseWriter, err error) {
	writeJSON(w, statusFor(err), ErrorJSON{Error: err.Error()})
}

// decodeJSON strictly parses a request body into v: unknown fields and
// trailing data after the first JSON value are both rejected (a body
// like `{...}{...}` or `{...}]` used to be silently accepted up to the
// first value).
func decodeJSON(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("invalid request body: %w", err)
	}
	if _, err := dec.Token(); !errors.Is(err, io.EOF) {
		return fmt.Errorf("invalid request body: trailing data after JSON value")
	}
	return nil
}

func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req RegisterRequest
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, err)
		return
	}
	params, err := req.Params()
	if err != nil {
		writeError(w, err)
		return
	}
	info, err := s.reg.Register(params)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, deviceJSON(info))
}

// qosScratch is pooled per-request state for the single-event decide
// path: the decode target and the response struct (whose Plan slice
// keeps its capacity across requests). Pool-reset rule: the decode
// target is zeroed before Decode (stale fields from the previous
// request must not leak into one that omits them), and the response
// struct is fully overwritten by decisionJSONInto.
type qosScratch struct {
	req QoSRequest
	dj  DecisionJSON
}

var qosScratchPool = sync.Pool{New: func() any { return new(qosScratch) }}

func (s *Server) handleQoS(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	qs := qosScratchPool.Get().(*qosScratch)
	defer qosScratchPool.Put(qs)
	qs.req = QoSRequest{}
	if err := decodeJSON(r, &qs.req); err != nil {
		writeError(w, err)
		return
	}
	if err := qs.req.validate(); err != nil {
		writeError(w, err)
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.decideTO)
	defer cancel()
	out, err := s.reg.DecideCtx(ctx, id, qs.req.Seq, qs.req.Spec())
	if err != nil {
		writeError(w, err)
		return
	}
	decisionJSONInto(&qs.dj, id, out.Decision)
	qs.dj.Seq = qs.req.Seq
	qs.dj.Degraded = out.Degraded
	writeJSON(w, http.StatusOK, &qs.dj)
}

// MaxBatchEvents caps one batch request; larger fleets split client
// side (the batching submitter never exceeds it).
const MaxBatchEvents = 8192

// batchScratch is the batch endpoint's pooled request state: decode
// targets, registry input/output, response structs and the binary
// encode buffer. Pool-reset rules: every slice is truncated to zero
// length before reuse; outcome slots are zeroed explicitly (DecideBatch
// treats a non-nil Err as "pre-failed, skip"); DecisionJSON entries are
// fully overwritten by decisionJSONInto before they are referenced.
// The JSON decode target is NOT pooled — encoding/json merges into
// existing slice elements, which would leak fields between requests.
type batchScratch struct {
	body    bytes.Buffer      // binary request body
	events  []BatchEventJSON  // decoded wire events (binary path)
	fleet   []BatchEvent      // registry input, index-aligned
	outs    []BatchOutcome    // registry output, index-aligned
	decs    []DecisionJSON    // per-event response scratch (Plan capacity reuse)
	results []BatchResultJSON // response body
	out     []byte            // binary response encode buffer
}

var batchScratchPool = sync.Pool{New: func() any { return new(batchScratch) }}

// handleDecideBatch is POST /v1/devices:decide-batch: many QoS events,
// across any number of devices, scored in one request. Per-device
// ordering and seq semantics match the single-event path exactly; each
// event answers independently (Status 200 + decision, or its own error
// status), so a 404 or stale-seq entry never poisons the batch. The
// request body is JSON (BatchRequestJSON) or the compact binary frame
// (Content-Type: application/x-clr-bin); the response mirrors the
// request's encoding.
func (s *Server) handleDecideBatch(w http.ResponseWriter, r *http.Request) {
	bs := batchScratchPool.Get().(*batchScratch)
	defer batchScratchPool.Put(bs)

	binWire := strings.HasPrefix(r.Header.Get("Content-Type"), BinContentType)
	var evs []BatchEventJSON
	if binWire {
		bs.body.Reset()
		if _, err := bs.body.ReadFrom(r.Body); err != nil {
			writeError(w, err)
			return
		}
		var err error
		if evs, err = DecodeBatchRequest(bs.body.Bytes(), bs.events[:0]); err != nil {
			writeError(w, err)
			return
		}
		bs.events = evs
	} else {
		var req BatchRequestJSON
		if err := decodeJSON(r, &req); err != nil {
			writeError(w, err)
			return
		}
		evs = req.Events
	}
	if len(evs) > MaxBatchEvents {
		writeError(w, fmt.Errorf("batch of %d events exceeds the %d-event cap", len(evs), MaxBatchEvents))
		return
	}
	s.batchEvents.Add(uint64(len(evs)))

	// Registry input/output, index-aligned with evs. Events that fail
	// wire validation pre-fill their outcome slot; DecideBatch skips
	// them.
	bs.fleet = bs.fleet[:0]
	if cap(bs.outs) < len(evs) {
		bs.outs = make([]BatchOutcome, len(evs))
	} else {
		bs.outs = bs.outs[:len(evs)]
		for i := range bs.outs {
			bs.outs[i] = BatchOutcome{}
		}
	}
	for i := range evs {
		bs.fleet = append(bs.fleet, BatchEvent{Device: evs[i].Device, Seq: evs[i].Seq, Spec: evs[i].Spec()})
		if evs[i].Device == "" {
			bs.outs[i].Err = errors.New("device must be non-empty")
		} else if err := evs[i].QoSSpecJSON.validate(); err != nil {
			bs.outs[i].Err = err
		}
	}

	ctx, cancel := context.WithTimeout(r.Context(), s.decideTO)
	defer cancel()
	s.reg.DecideBatch(ctx, bs.fleet, bs.outs)

	if cap(bs.decs) < len(evs) {
		bs.decs = append(bs.decs[:cap(bs.decs)], make([]DecisionJSON, len(evs)-cap(bs.decs))...)
	}
	bs.decs = bs.decs[:len(evs)]
	bs.results = bs.results[:0]
	for i := range evs {
		if err := bs.outs[i].Err; err != nil {
			bs.results = append(bs.results, BatchResultJSON{Status: statusFor(err), Error: err.Error()})
			continue
		}
		dj := &bs.decs[i]
		decisionJSONInto(dj, evs[i].Device, bs.outs[i].Out.Decision)
		dj.Seq = evs[i].Seq
		dj.Degraded = bs.outs[i].Out.Degraded
		bs.results = append(bs.results, BatchResultJSON{Status: http.StatusOK, Decision: dj})
	}

	if binWire {
		out, err := AppendBatchResponse(bs.out[:0], bs.results)
		if err != nil {
			writeError(w, err)
			return
		}
		bs.out = out
		w.Header().Set("Content-Type", BinContentType)
		w.Header().Set("Content-Length", strconv.Itoa(len(out)))
		w.WriteHeader(http.StatusOK)
		//lint:allow errdrop a response-write failure means the client is gone; there is no one left to tell
		_, _ = w.Write(out)
		return
	}
	writeJSON(w, http.StatusOK, BatchResponseJSON{Results: bs.results})
}

func (s *Server) handleGetDevice(w http.ResponseWriter, r *http.Request) {
	info, err := s.reg.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, deviceJSON(info))
}

func (s *Server) handleDeleteDevice(w http.ResponseWriter, r *http.Request) {
	if err := s.reg.Remove(r.PathValue("id")); err != nil {
		writeError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleDatabases(w http.ResponseWriter, _ *http.Request) {
	dbs := s.reg.Databases()
	out := make([]DatabaseJSON, 0, len(dbs))
	for _, db := range dbs {
		out = append(out, databaseJSON(db))
	}
	writeJSON(w, http.StatusOK, out)
}

// handleHealthz is liveness: the process is up and serving. It stays
// 200 even when devices are degraded — a degraded fleet still answers
// (with last known-good configurations), so killing the process would
// only make things worse.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	status := "ok"
	if s.reg.DegradedDevices() > 0 {
		status = "degraded"
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":           status,
		"devices":          s.reg.Len(),
		"degraded_devices": s.reg.DegradedDevices(),
	})
}

// handleReadyz is readiness: whether this instance should receive new
// traffic. Unlike /healthz it turns 503 while draining and when the
// degraded-device fraction exceeds the configured ceiling, steering
// load balancers away while the instance recovers.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	n := s.reg.Len()
	deg := s.reg.DegradedDevices()
	body := map[string]any{"status": "ready", "devices": n, "degraded_devices": deg}
	switch {
	case s.draining.Load():
		body["status"] = "draining"
		writeJSON(w, http.StatusServiceUnavailable, body)
	case n > 0 && float64(deg) > s.readyFrac*float64(n):
		body["status"] = "degraded"
		writeJSON(w, http.StatusServiceUnavailable, body)
	default:
		writeJSON(w, http.StatusOK, body)
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.reg.met.WritePrometheus(w)
}

// handleDecisions serves the decision journal: every recent decision
// with its explanation (chosen point, candidate counts, score, stage
// latencies, trace ID). Query parameters: device filters to one
// device; limit caps the answer to the newest N entries (default
// 1000, 0 keeps the default).
func (s *Server) handleDecisions(w http.ResponseWriter, r *http.Request) {
	device := r.URL.Query().Get("device")
	limit := 1000
	if ls := r.URL.Query().Get("limit"); ls != "" {
		n, err := strconv.Atoi(ls)
		if err != nil || n < 0 {
			writeError(w, fmt.Errorf("invalid limit %q", ls))
			return
		}
		if n > 0 {
			limit = n
		}
	}
	entries := s.reg.Decisions(device, limit)
	writeJSON(w, http.StatusOK, DecisionsJSON{
		Count:     len(entries),
		Device:    device,
		Decisions: entries,
	})
}

// handleEvolve serves the Continuous-ReD state: per-cohort active and
// candidate versions, the shadow window's agreement counters and the
// most recent divergences. Query parameter db filters to one cohort.
func (s *Server) handleEvolve(w http.ResponseWriter, r *http.Request) {
	if name := r.URL.Query().Get("db"); name != "" {
		st, err := s.reg.EvolveStatus(name)
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, EvolveJSON{Databases: []EvolveStatus{st}})
		return
	}
	writeJSON(w, http.StatusOK, EvolveJSON{Databases: s.reg.EvolveStatuses()})
}

// handleCohort serves the cohort-learning state: per-cohort value-table
// version, epoch, fingerprints and aggregation provenance. Query
// parameter db filters to one cohort.
func (s *Server) handleCohort(w http.ResponseWriter, r *http.Request) {
	if name := r.URL.Query().Get("db"); name != "" {
		st, err := s.reg.ValueTableStatus(name)
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, CohortJSON{Databases: []ValueTableStatus{st}})
		return
	}
	writeJSON(w, http.StatusOK, CohortJSON{Databases: s.reg.ValueTableStatuses()})
}

// newHTTPServer applies the service's server-side timeouts.
func (s *Server) newHTTPServer() *http.Server {
	return &http.Server{
		Handler:           s.handler,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       15 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       120 * time.Second,
	}
}

// Serve accepts connections on l until Shutdown (or a listener
// error). It always returns a non-nil error; after Shutdown the error
// is http.ErrServerClosed.
func (s *Server) Serve(l net.Listener) error {
	return s.httpSrv.Serve(l)
}

// Shutdown gracefully stops the server, draining in-flight decisions
// for up to the configured grace period. /readyz flips to 503
// ("draining") for the duration, so load balancers stop routing here
// while in-flight decisions finish.
func (s *Server) Shutdown() error {
	s.draining.Store(true)
	ctx, cancel := context.WithTimeout(context.Background(), s.grace)
	defer cancel()
	return s.httpSrv.Shutdown(ctx)
}

// Run listens on addr and serves until ctx is cancelled (typically by
// signal.NotifyContext on SIGINT/SIGTERM), then drains in-flight
// requests and returns. A nil return means a clean shutdown.
func (s *Server) Run(ctx context.Context, addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.log.Info("fleet server listening", "addr", l.Addr().String(),
		"databases", len(s.reg.dbs), "shards", len(s.reg.shards))
	errc := make(chan error, 1)
	go func() { errc <- s.Serve(l) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		s.log.Info("fleet server draining", "grace", s.grace.String())
		if err := s.Shutdown(); err != nil {
			return err
		}
		<-errc // always http.ErrServerClosed after a clean Shutdown
		return nil
	}
}
