package fleet

// The HTTP/JSON front of the decision service. One Server hosts one
// Registry; handlers are thin translations between the wire types of
// api.go and the registry, with the operational wrapping a
// long-running service needs: per-endpoint request accounting, a
// request body cap, structured request logging, server-side timeouts
// and graceful drain on shutdown.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"time"

	"clrdse/internal/fleet/metrics"
)

// ServerConfig configures a fleet decision server.
type ServerConfig struct {
	// Databases are the decision bases devices can register against.
	Databases []NamedDatabase
	// Shards is the registry shard count (0 selects DefaultShards).
	Shards int
	// MaxBodyBytes caps request bodies (0 selects 1 MiB).
	MaxBodyBytes int64
	// ShutdownGrace bounds how long Shutdown waits for in-flight
	// decisions to drain (0 selects 10s).
	ShutdownGrace time.Duration
	// Logger receives structured request logs (nil selects
	// slog.Default()).
	Logger *slog.Logger
}

// Server is the fleet decision service.
type Server struct {
	reg      *Registry
	log      *slog.Logger
	maxBody  int64
	grace    time.Duration
	handler  http.Handler
	httpSrv  *http.Server
	reqCount map[string]*metrics.Counter
}

// NewServer validates the configuration (including every database)
// and builds the service.
func NewServer(cfg ServerConfig) (*Server, error) {
	reg, err := NewRegistry(cfg.Databases, cfg.Shards)
	if err != nil {
		return nil, err
	}
	s := &Server{
		reg:      reg,
		log:      cfg.Logger,
		maxBody:  cfg.MaxBodyBytes,
		grace:    cfg.ShutdownGrace,
		reqCount: make(map[string]*metrics.Counter),
	}
	if s.log == nil {
		s.log = slog.Default()
	}
	if s.maxBody <= 0 {
		s.maxBody = 1 << 20
	}
	if s.grace <= 0 {
		s.grace = 10 * time.Second
	}
	s.handler = s.buildMux()
	s.httpSrv = s.newHTTPServer()
	return s, nil
}

// Registry exposes the underlying device registry, so embedders can
// pre-register devices or inspect the fleet without going through
// HTTP.
func (s *Server) Registry() *Registry { return s.reg }

// Handler returns the service's HTTP handler (for tests and embedders
// that bring their own http.Server).
func (s *Server) Handler() http.Handler { return s.handler }

// buildMux wires the v1 routes, each wrapped with request accounting
// and logging.
func (s *Server) buildMux() http.Handler {
	mux := http.NewServeMux()
	route := func(pattern, name string, h http.HandlerFunc) {
		c := s.reg.met.Counter("http_requests_total",
			"Requests per endpoint.", "endpoint", name)
		s.reqCount[name] = c
		mux.Handle(pattern, s.wrap(name, c, h))
	}
	route("POST /v1/devices", "register", s.handleRegister)
	route("POST /v1/devices/{id}/qos", "qos", s.handleQoS)
	route("GET /v1/devices/{id}", "get_device", s.handleGetDevice)
	route("DELETE /v1/devices/{id}", "delete_device", s.handleDeleteDevice)
	route("GET /v1/databases", "databases", s.handleDatabases)
	route("GET /healthz", "healthz", s.handleHealthz)
	route("GET /metrics", "metrics", s.handleMetrics)
	return mux
}

// statusWriter captures the response code for the request log.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// wrap applies the per-endpoint middleware: body cap, request
// counter, structured log line.
func (s *Server) wrap(name string, c *metrics.Counter, h http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		c.Inc()
		if r.Body != nil {
			r.Body = http.MaxBytesReader(w, r.Body, s.maxBody)
		}
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		h(sw, r)
		s.log.Info("request",
			"endpoint", name,
			"method", r.Method,
			"path", r.URL.Path,
			"status", sw.status,
			"duration_us", time.Since(start).Microseconds(),
			"remote", r.RemoteAddr,
		)
	})
}

// writeJSON renders a response body with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeError maps registry and validation errors onto status codes.
func writeError(w http.ResponseWriter, err error) {
	status := http.StatusBadRequest
	var maxBytes *http.MaxBytesError
	switch {
	case errors.Is(err, ErrNoDevice), errors.Is(err, ErrNoDatabase):
		status = http.StatusNotFound
	case errors.Is(err, ErrDeviceExists):
		status = http.StatusConflict
	case errors.As(err, &maxBytes):
		status = http.StatusRequestEntityTooLarge
	}
	writeJSON(w, status, ErrorJSON{Error: err.Error()})
}

// decodeJSON strictly parses a request body into v.
func decodeJSON(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("invalid request body: %w", err)
	}
	return nil
}

func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req RegisterRequest
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, err)
		return
	}
	params, err := req.Params()
	if err != nil {
		writeError(w, err)
		return
	}
	info, err := s.reg.Register(params)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, deviceJSON(info))
}

func (s *Server) handleQoS(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	var spec QoSSpecJSON
	if err := decodeJSON(r, &spec); err != nil {
		writeError(w, err)
		return
	}
	if err := spec.validate(); err != nil {
		writeError(w, err)
		return
	}
	dec, err := s.reg.Decide(id, spec.Spec())
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, decisionJSON(id, dec))
}

func (s *Server) handleGetDevice(w http.ResponseWriter, r *http.Request) {
	info, err := s.reg.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, deviceJSON(info))
}

func (s *Server) handleDeleteDevice(w http.ResponseWriter, r *http.Request) {
	if err := s.reg.Remove(r.PathValue("id")); err != nil {
		writeError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleDatabases(w http.ResponseWriter, _ *http.Request) {
	dbs := s.reg.Databases()
	out := make([]DatabaseJSON, 0, len(dbs))
	for _, db := range dbs {
		out = append(out, databaseJSON(db))
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":  "ok",
		"devices": s.reg.Len(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.reg.met.WritePrometheus(w)
}

// newHTTPServer applies the service's server-side timeouts.
func (s *Server) newHTTPServer() *http.Server {
	return &http.Server{
		Handler:           s.handler,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       15 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       120 * time.Second,
	}
}

// Serve accepts connections on l until Shutdown (or a listener
// error). It always returns a non-nil error; after Shutdown the error
// is http.ErrServerClosed.
func (s *Server) Serve(l net.Listener) error {
	return s.httpSrv.Serve(l)
}

// Shutdown gracefully stops the server, draining in-flight decisions
// for up to the configured grace period.
func (s *Server) Shutdown() error {
	ctx, cancel := context.WithTimeout(context.Background(), s.grace)
	defer cancel()
	return s.httpSrv.Shutdown(ctx)
}

// Run listens on addr and serves until ctx is cancelled (typically by
// signal.NotifyContext on SIGINT/SIGTERM), then drains in-flight
// requests and returns. A nil return means a clean shutdown.
func (s *Server) Run(ctx context.Context, addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.log.Info("fleet server listening", "addr", l.Addr().String(),
		"databases", len(s.reg.dbs), "shards", len(s.reg.shards))
	errc := make(chan error, 1)
	go func() { errc <- s.Serve(l) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		s.log.Info("fleet server draining", "grace", s.grace.String())
		if err := s.Shutdown(); err != nil {
			return err
		}
		<-errc // always http.ErrServerClosed after a clean Shutdown
		return nil
	}
}
