package fleet

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"testing"

	"clrdse/internal/dse"
	"clrdse/internal/ga"
	"clrdse/internal/mapping"
	"clrdse/internal/platform"
	"clrdse/internal/relmodel"
	"clrdse/internal/rng"
	"clrdse/internal/runtime"
	"clrdse/internal/taskgraph"
)

// fixture builds one real design-time result shared by the fleet
// tests (building it per test would dominate the suite's runtime).
type fixture struct {
	problem *dse.Problem
	base    *dse.Database
	red     *dse.Database
}

var (
	fixOnce sync.Once
	fix     fixture
	fixErr  error
)

func getFixture(t testing.TB) fixture {
	t.Helper()
	fixOnce.Do(func() {
		plat := platform.Default()
		g, err := taskgraph.Generate(taskgraph.GenParams{Seed: 51, NumTasks: 20}, plat)
		if err != nil {
			fixErr = err
			return
		}
		prob := &dse.Problem{
			Space:  &mapping.Space{Graph: g, Platform: plat, Catalogue: relmodel.DefaultCatalogue()},
			Env:    relmodel.DefaultEnv(),
			SMaxMs: g.PeriodMs,
			FMin:   0.90,
		}
		base, err := dse.RunBase(prob, ga.Params{PopSize: 28, Generations: 12, Seed: 1})
		if err != nil {
			fixErr = err
			return
		}
		red, err := dse.RunReD(prob, base, dse.ReDParams{
			GA: ga.Params{PopSize: 16, Generations: 8, Seed: 2}, MaxExtraPerSeed: 2,
		})
		if err != nil {
			fixErr = err
			return
		}
		fix = fixture{problem: prob, base: base, red: red}
	})
	if fixErr != nil {
		t.Fatal(fixErr)
	}
	return fix
}

// fleetDatabases returns the fixture as the registry's decision bases.
func fleetDatabases(t testing.TB) []NamedDatabase {
	f := getFixture(t)
	return []NamedDatabase{
		{Name: "red", DB: f.red, Space: f.problem.Space},
		{Name: "based", DB: f.base, Space: f.problem.Space},
	}
}

// looseSpec returns a specification every point of the database
// satisfies.
func looseSpec(db *dse.Database) runtime.QoSSpec {
	n := NamedDatabase{DB: db}
	_, maxS, minF, _ := n.Envelope()
	return runtime.QoSSpec{SMaxMs: maxS, FMin: minF}
}

func TestRegistryLifecycle(t *testing.T) {
	f := getFixture(t)
	reg, err := NewRegistry(fleetDatabases(t), 4)
	if err != nil {
		t.Fatal(err)
	}
	info, err := reg.Register(DeviceParams{
		ID: "sat-1", Database: "red", PRC: 0.4,
		Trigger: runtime.TriggerOnViolation, Initial: looseSpec(f.red),
	})
	if err != nil {
		t.Fatal(err)
	}
	if info.Point < 0 || info.Point >= f.red.Len() {
		t.Fatalf("boot point %d out of range", info.Point)
	}
	if reg.Len() != 1 {
		t.Fatalf("Len = %d, want 1", reg.Len())
	}

	// Demand the most reliable point to force activity.
	q := runtime.ModelFromDatabase(f.red)
	dec, err := reg.Decide("sat-1", runtime.QoSSpec{SMaxMs: q.HiS, FMin: q.HiF})
	if err != nil {
		t.Fatal(err)
	}
	if dec.To < 0 || dec.To >= f.red.Len() {
		t.Fatalf("decision to point %d out of range", dec.To)
	}
	got, err := reg.Get("sat-1")
	if err != nil {
		t.Fatal(err)
	}
	if got.Stats.Decisions != 1 {
		t.Errorf("stats decisions = %d, want 1", got.Stats.Decisions)
	}
	if got.Point != dec.To {
		t.Errorf("snapshot point %d != decision point %d", got.Point, dec.To)
	}
	if reg.DecisionCount() != 1 {
		t.Errorf("fleet decision counter = %d, want 1", reg.DecisionCount())
	}

	if err := reg.Remove("sat-1"); err != nil {
		t.Fatal(err)
	}
	if reg.Len() != 0 {
		t.Errorf("Len after remove = %d, want 0", reg.Len())
	}
	if _, err := reg.Get("sat-1"); !errors.Is(err, ErrNoDevice) {
		t.Errorf("Get after remove = %v, want ErrNoDevice", err)
	}
}

func TestRegistryErrors(t *testing.T) {
	f := getFixture(t)
	reg, err := NewRegistry(fleetDatabases(t), 0)
	if err != nil {
		t.Fatal(err)
	}
	spec := looseSpec(f.red)
	if _, err := reg.Register(DeviceParams{ID: "d", Database: "nope", Initial: spec}); !errors.Is(err, ErrNoDatabase) {
		t.Errorf("unknown database: %v, want ErrNoDatabase", err)
	}
	if _, err := reg.Register(DeviceParams{Database: "red", Initial: spec}); err == nil {
		t.Error("accepted empty device ID")
	}
	if _, err := reg.Register(DeviceParams{ID: "a/b", Database: "red", Initial: spec}); err == nil {
		t.Error("accepted device ID with a slash")
	}
	if _, err := reg.Register(DeviceParams{ID: "d", Database: "red", PRC: 1.5, Initial: spec}); err == nil {
		t.Error("accepted pRC outside [0,1]")
	}
	if _, err := reg.Register(DeviceParams{ID: "d", Database: "red", Gamma: 1, Initial: spec}); err == nil {
		t.Error("accepted gamma = 1")
	}
	if _, err := reg.Register(DeviceParams{ID: "d", Database: "red", Initial: spec}); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Register(DeviceParams{ID: "d", Database: "red", Initial: spec}); !errors.Is(err, ErrDeviceExists) {
		t.Errorf("duplicate registration: %v, want ErrDeviceExists", err)
	}
	if _, err := reg.Decide("ghost", spec); !errors.Is(err, ErrNoDevice) {
		t.Errorf("decide on unknown device: %v, want ErrNoDevice", err)
	}
	if err := reg.Remove("ghost"); !errors.Is(err, ErrNoDevice) {
		t.Errorf("remove unknown device: %v, want ErrNoDevice", err)
	}
}

func TestNewRegistryValidatesDatabases(t *testing.T) {
	f := getFixture(t)
	if _, err := NewRegistry(nil, 0); err == nil {
		t.Error("accepted empty database list")
	}
	if _, err := NewRegistry([]NamedDatabase{{Name: "", DB: f.red, Space: f.problem.Space}}, 0); err == nil {
		t.Error("accepted unnamed database")
	}
	if _, err := NewRegistry([]NamedDatabase{
		{Name: "a", DB: f.red, Space: f.problem.Space},
		{Name: "a", DB: f.base, Space: f.problem.Space},
	}, 0); err == nil {
		t.Error("accepted duplicate database names")
	}
	corrupt := &dse.Database{Name: "c", Points: []*dse.DesignPoint{{ID: 3, M: f.red.Points[0].M}}}
	if _, err := NewRegistry([]NamedDatabase{{Name: "c", DB: corrupt, Space: f.problem.Space}}, 0); err == nil {
		t.Error("accepted corrupt database (sparse IDs)")
	}
}

// deviceScript precomputes one device's deterministic QoS sequence.
func deviceScript(db *dse.Database, seed int64, events int) []runtime.QoSSpec {
	q := runtime.ModelFromDatabase(db)
	src := rng.New(seed)
	stream := q.Stream()
	specs := make([]runtime.QoSSpec, events)
	for i := range specs {
		specs[i] = stream.Next(src)
	}
	return specs
}

// decisionKey serialises a decision for byte-level comparison.
func decisionKey(t testing.TB, d runtime.Decision) string {
	t.Helper()
	b, err := json.Marshal(decisionJSON("x", d))
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestConcurrentDecisionsMatchSerial is the fleet's core correctness
// claim: concurrent registration and QoS traffic over many devices —
// with deliberately colliding registration attempts — must produce,
// per device, the byte-identical decision sequence of a serial run on
// the same seeds, and no data races under -race.
func TestConcurrentDecisionsMatchSerial(t *testing.T) {
	f := getFixture(t)
	const devices, events = 24, 40
	scripts := make([][]runtime.QoSSpec, devices)
	for d := range scripts {
		scripts[d] = deviceScript(f.red, int64(100+d), events)
	}
	boot := looseSpec(f.red)
	params := func(d int) DeviceParams {
		return DeviceParams{
			ID:       fmt.Sprintf("dev-%d", d),
			Database: "red",
			PRC:      0.5,
			Trigger:  runtime.TriggerOnViolation,
			Gamma:    0.8,
			Initial:  boot,
		}
	}

	// Serial reference: one registry, one goroutine.
	serial := make([][]string, devices)
	regA, err := NewRegistry(fleetDatabases(t), 4)
	if err != nil {
		t.Fatal(err)
	}
	for d := 0; d < devices; d++ {
		if _, err := regA.Register(params(d)); err != nil {
			t.Fatal(err)
		}
		for _, spec := range scripts[d] {
			dec, err := regA.Decide(fmt.Sprintf("dev-%d", d), spec)
			if err != nil {
				t.Fatal(err)
			}
			serial[d] = append(serial[d], decisionKey(t, dec))
		}
	}

	// Concurrent run: every device races registration from two
	// goroutines (exactly one must win), then streams its script from
	// its own goroutine while all other devices do the same.
	regB, err := NewRegistry(fleetDatabases(t), 4)
	if err != nil {
		t.Fatal(err)
	}
	concurrent := make([][]string, devices)
	dup := make([]int, devices) // duplicate-registration failures
	var wg sync.WaitGroup
	for d := 0; d < devices; d++ {
		wg.Add(2)
		// The colliding registrar: same ID, racing the worker's own
		// registration.
		go func(d int) {
			defer wg.Done()
			if _, err := regB.Register(params(d)); err != nil {
				if !errors.Is(err, ErrDeviceExists) {
					t.Errorf("dev-%d: unexpected registration error: %v", d, err)
				}
				dup[d]++
			}
		}(d)
		go func(d int) {
			defer wg.Done()
			if _, err := regB.Register(params(d)); err != nil {
				if !errors.Is(err, ErrDeviceExists) {
					t.Errorf("dev-%d: unexpected registration error: %v", d, err)
					return
				}
				dup[d]++
			}
			for _, spec := range scripts[d] {
				dec, err := regB.Decide(fmt.Sprintf("dev-%d", d), spec)
				if err != nil {
					t.Errorf("dev-%d: %v", d, err)
					return
				}
				concurrent[d] = append(concurrent[d], decisionKey(t, dec))
			}
		}(d)
	}
	wg.Wait()

	for d := 0; d < devices; d++ {
		if dup[d] != 1 {
			t.Errorf("dev-%d: %d duplicate-registration failures, want exactly 1", d, dup[d])
		}
		if len(concurrent[d]) != len(serial[d]) {
			t.Fatalf("dev-%d: %d concurrent decisions vs %d serial", d, len(concurrent[d]), len(serial[d]))
		}
		for i := range serial[d] {
			if concurrent[d][i] != serial[d][i] {
				t.Fatalf("dev-%d event %d: concurrent decision %s != serial %s",
					d, i, concurrent[d][i], serial[d][i])
			}
		}
	}
	if got := regB.DecisionCount(); got != devices*events {
		t.Errorf("decision counter = %d, want %d", got, devices*events)
	}
}

func TestParseTriggerAndPolicy(t *testing.T) {
	if tr, err := ParseTrigger(""); err != nil || tr != runtime.TriggerAlways {
		t.Errorf("empty trigger -> %v, %v", tr, err)
	}
	if tr, err := ParseTrigger("on-violation"); err != nil || tr != runtime.TriggerOnViolation {
		t.Errorf("on-violation -> %v, %v", tr, err)
	}
	if _, err := ParseTrigger("sometimes"); err == nil {
		t.Error("accepted unknown trigger")
	}
	if p, err := ParsePolicy("hypervolume"); err != nil || p != runtime.PolicyHypervolume {
		t.Errorf("hypervolume -> %v, %v", p, err)
	}
	if _, err := ParsePolicy("greedy"); err == nil {
		t.Error("accepted unknown policy")
	}
}
