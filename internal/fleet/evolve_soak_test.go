package fleet

// TestEvolveSoak is the CI swap-soak gate: concurrent fleet traffic is
// driven through a full Continuous-ReD cycle — propose, shadow-serve,
// cut over, roll back — with at-least-once delivery (seeded retries),
// and the run must show:
//
//  1. no device lost: every registered device survives the cycle with
//     its full decision count;
//  2. no sequence answered twice: a retried sequence number is always
//     answered from the replay cache, byte-identical to the original,
//     and never re-decided — across the cutover included;
//  3. pre-swap byte-identity: every decision made before the cutover
//     (shadow window included) equals the decision a frozen-database
//     reference run makes on the same seeds.
//
// When the EVOLVE_JOURNAL_ARTIFACT / EVOLVE_DIFF_ARTIFACT environment
// variables are set, the decision journal and the evolve status diff
// are dumped as JSON for CI to upload.

import (
	"context"
	"encoding/json"
	"os"
	"sync"
	"testing"

	"clrdse/internal/rng"
	"clrdse/internal/runtime"
)

func TestEvolveSoak(t *testing.T) {
	f := getFixture(t)
	const (
		devices = 12
		preN    = 10 // events before the candidate is proposed
		shadowN = 10 // events inside the shadow window
		postN   = 8  // events served by the new version
		tailN   = 6  // events after rollback
		total   = preN + shadowN + postN + tailN
	)
	scripts := make([][]runtime.QoSSpec, devices)
	for d := range scripts {
		scripts[d] = deviceScript(f.red, int64(7000+d), total)
	}
	boot := looseSpec(f.red)
	params := func(d int) DeviceParams {
		return DeviceParams{
			ID: deviceID(d), Database: "red", PRC: 0.5,
			Trigger: runtime.TriggerOnViolation, Gamma: 0.8, Initial: boot,
		}
	}

	// Frozen-database reference, serial: the byte-identity oracle for
	// everything decided before the cutover.
	ref, err := NewRegistry(fleetDatabases(t), 4)
	if err != nil {
		t.Fatal(err)
	}
	refKeys := make([][]string, devices)
	for d := 0; d < devices; d++ {
		if _, err := ref.Register(params(d)); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < preN+shadowN; i++ {
			out, err := ref.DecideCtx(context.Background(), deviceID(d), uint64(i+1), scripts[d][i])
			if err != nil {
				t.Fatal(err)
			}
			refKeys[d] = append(refKeys[d], decisionKey(t, out.Decision))
		}
	}

	reg, err := NewRegistry(fleetDatabases(t), 4)
	if err != nil {
		t.Fatal(err)
	}
	for d := 0; d < devices; d++ {
		if _, err := reg.Register(params(d)); err != nil {
			t.Fatal(err)
		}
	}

	// keys[d][seq-1] is the decision each sequence number was first
	// answered with; a later answer for the same seq must match it.
	keys := make([][]string, devices)
	for d := range keys {
		keys[d] = make([]string, total)
	}
	// drivePhase streams events [from, to) for every device
	// concurrently, retrying a seeded subset of sequence numbers to
	// exercise at-least-once delivery.
	drivePhase := func(from, to int) {
		t.Helper()
		var wg sync.WaitGroup
		for d := 0; d < devices; d++ {
			wg.Add(1)
			go func(d int) {
				defer wg.Done()
				retry := rng.New(int64(9000*from + d))
				for i := from; i < to; i++ {
					seq := uint64(i + 1)
					out, err := reg.DecideCtx(context.Background(), deviceID(d), seq, scripts[d][i])
					if err != nil {
						t.Errorf("%s seq %d: %v", deviceID(d), seq, err)
						return
					}
					if out.Replayed {
						t.Errorf("%s seq %d: fresh sequence answered from the replay cache", deviceID(d), seq)
					}
					keys[d][i] = decisionKey(t, out.Decision)
					if retry.Bool(0.3) {
						dup, err := reg.DecideCtx(context.Background(), deviceID(d), seq, scripts[d][i])
						if err != nil {
							t.Errorf("%s seq %d retry: %v", deviceID(d), seq, err)
							return
						}
						if !dup.Replayed {
							t.Errorf("%s seq %d: retry was re-decided (answered twice)", deviceID(d), seq)
						}
						if got := decisionKey(t, dup.Decision); got != keys[d][i] {
							t.Errorf("%s seq %d: retry diverged:\n  got  %s\n  want %s", deviceID(d), seq, got, keys[d][i])
						}
					}
				}
			}(d)
		}
		wg.Wait()
	}

	drivePhase(0, preN)
	if err := reg.ProposeDatabase("red", versioned(f.base, 1)); err != nil {
		t.Fatal(err)
	}
	drivePhase(preN, preN+shadowN)

	// Pre-swap byte-identity against the frozen reference.
	for d := 0; d < devices; d++ {
		for i := 0; i < preN+shadowN; i++ {
			if keys[d][i] != refKeys[d][i] {
				t.Fatalf("%s seq %d: pre-swap decision diverged from frozen reference:\n  got  %s\n  want %s",
					deviceID(d), i+1, keys[d][i], refKeys[d][i])
			}
		}
	}
	preStatus, err := reg.EvolveStatus("red")
	if err != nil {
		t.Fatal(err)
	}
	if want := uint64(devices * shadowN); preStatus.ShadowEvents != want {
		t.Errorf("shadow window saw %d events, want %d", preStatus.ShadowEvents, want)
	}

	if err := reg.CutoverDatabase("red"); err != nil {
		t.Fatal(err)
	}
	// Exactly-once across the swap: every device's last pre-swap
	// sequence replays byte-identically on the new version.
	for d := 0; d < devices; d++ {
		out, err := reg.DecideCtx(context.Background(), deviceID(d), preN+shadowN, scripts[d][preN+shadowN-1])
		if err != nil {
			t.Fatal(err)
		}
		if !out.Replayed {
			t.Errorf("%s: pre-swap retry re-decided after cutover", deviceID(d))
		}
		if got := decisionKey(t, out.Decision); got != keys[d][preN+shadowN-1] {
			t.Errorf("%s: pre-swap replay changed across cutover", deviceID(d))
		}
	}
	drivePhase(preN+shadowN, preN+shadowN+postN)

	if err := reg.RollbackDatabase("red"); err != nil {
		t.Fatal(err)
	}
	drivePhase(preN+shadowN+postN, total)

	// No device lost, none degraded, full decision counts.
	if reg.Len() != devices {
		t.Errorf("fleet holds %d devices after the swap cycle, want %d", reg.Len(), devices)
	}
	for d := 0; d < devices; d++ {
		info, err := reg.Get(deviceID(d))
		if err != nil {
			t.Fatalf("%s lost across the swap cycle: %v", deviceID(d), err)
		}
		if info.Stats.Decisions != total {
			t.Errorf("%s decided %d events, want %d", deviceID(d), info.Stats.Decisions, total)
		}
		if info.Stats.Degraded != 0 {
			t.Errorf("%s: %d degraded answers in a fault-free soak", deviceID(d), info.Stats.Degraded)
		}
	}
	// The journal's version stamps match the phase structure: v1
	// exactly for the post-cutover phase.
	for d := 0; d < devices; d++ {
		for _, e := range reg.Decisions(deviceID(d), 0) {
			want := uint64(0)
			if int(e.Seq) > preN+shadowN && int(e.Seq) <= preN+shadowN+postN {
				want = 1
			}
			if e.DBVersion != want {
				t.Errorf("%s seq %d journaled at v%d, want v%d", deviceID(d), e.Seq, e.DBVersion, want)
			}
		}
	}
	st, err := reg.EvolveStatus("red")
	if err != nil {
		t.Fatal(err)
	}
	if st.ActiveVersion != 0 || st.HasCandidate || st.HasPrevious {
		t.Errorf("cohort did not return to the pre-swap version state: %+v", st)
	}

	dumpEvolveArtifacts(t, reg, preStatus)
}

func deviceID(d int) string {
	return "soak-" + string(rune('a'+d%26)) + string(rune('0'+d/26))
}

// dumpEvolveArtifacts writes the decision journal and the evolve diff
// to the paths named by EVOLVE_JOURNAL_ARTIFACT / EVOLVE_DIFF_ARTIFACT
// (when set) so CI can attach them to the run.
func dumpEvolveArtifacts(t *testing.T, reg *Registry, shadow EvolveStatus) {
	if path := os.Getenv("EVOLVE_JOURNAL_ARTIFACT"); path != "" {
		b, err := json.MarshalIndent(reg.Decisions("", 0), "", "  ")
		if err != nil {
			t.Errorf("marshalling journal artifact: %v", err)
		} else if err := os.WriteFile(path, b, 0o644); err != nil {
			t.Errorf("writing journal artifact: %v", err)
		} else {
			t.Logf("decision journal written to %s", path)
		}
	}
	if path := os.Getenv("EVOLVE_DIFF_ARTIFACT"); path != "" {
		diff := struct {
			ShadowWindow EvolveStatus   `json:"shadow_window"`
			Final        []EvolveStatus `json:"final"`
		}{ShadowWindow: shadow, Final: reg.EvolveStatuses()}
		b, err := json.MarshalIndent(diff, "", "  ")
		if err != nil {
			t.Errorf("marshalling evolve diff artifact: %v", err)
		} else if err := os.WriteFile(path, b, 0o644); err != nil {
			t.Errorf("writing evolve diff artifact: %v", err)
		} else {
			t.Logf("evolve diff written to %s", path)
		}
	}
}
