package schedule

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"clrdse/internal/mapping"
	"clrdse/internal/platform"
	"clrdse/internal/relmodel"
	"clrdse/internal/rng"
	"clrdse/internal/taskgraph"
)

func testEvaluator(t *testing.T, n int) *Evaluator {
	t.Helper()
	plat := platform.Default()
	g, err := taskgraph.Generate(taskgraph.GenParams{Seed: 21, NumTasks: n}, plat)
	if err != nil {
		t.Fatal(err)
	}
	return &Evaluator{
		Space: &mapping.Space{Graph: g, Platform: plat, Catalogue: relmodel.DefaultCatalogue()},
		Env:   relmodel.DefaultEnv(),
	}
}

func chainEvaluator(t *testing.T) (*Evaluator, *mapping.Mapping) {
	t.Helper()
	plat := platform.Default()
	imp := func() []taskgraph.Impl {
		return []taskgraph.Impl{{ID: 0, PEType: 1, BaseExTimeMs: 10, BasePowerW: 1, BinaryKB: 32, BitstreamID: -1}}
	}
	g := &taskgraph.Graph{
		Name: "chain3",
		Tasks: []taskgraph.Task{
			{ID: 0, Name: "a", Criticality: 1.0 / 3, Impls: imp()},
			{ID: 1, Name: "b", Criticality: 1.0 / 3, Impls: imp()},
			{ID: 2, Name: "c", Criticality: 1.0 / 3, Impls: imp()},
		},
		Edges: []taskgraph.Edge{
			{ID: 0, Src: 0, Dst: 1, CommTimeMs: 5},
			{ID: 1, Src: 1, Dst: 2, CommTimeMs: 5},
		},
		PeriodMs: 100,
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	ev := &Evaluator{
		Space: &mapping.Space{Graph: g, Platform: plat, Catalogue: relmodel.DefaultCatalogue()},
		Env:   relmodel.DefaultEnv(),
	}
	m := &mapping.Mapping{Genes: []mapping.Gene{
		{PE: 1, Impl: 0}, {PE: 1, Impl: 0}, {PE: 1, Impl: 0},
	}}
	return ev, m
}

func TestChainSamePENoCommCost(t *testing.T) {
	ev, m := chainEvaluator(t)
	res, err := ev.Evaluate(m)
	if err != nil {
		t.Fatal(err)
	}
	// All three on PE 1 (speed 1.0): 3 x 10ms back to back, no comm.
	if math.Abs(res.MakespanMs-30) > 1e-9 {
		t.Errorf("makespan = %v, want 30", res.MakespanMs)
	}
	if !res.MeetsPeriod {
		t.Error("30ms should meet the 100ms period")
	}
}

func TestChainCrossPEPaysComm(t *testing.T) {
	ev, m := chainEvaluator(t)
	m.Genes[1].PE = 2 // same type (mid), different PE
	res, err := ev.Evaluate(m)
	if err != nil {
		t.Fatal(err)
	}
	// 10 + 5 + 10 + 5 + 10 = 40.
	if math.Abs(res.MakespanMs-40) > 1e-9 {
		t.Errorf("makespan = %v, want 40 with comm delays", res.MakespanMs)
	}
}

func TestEnergyIsSumOfTaskEnergies(t *testing.T) {
	ev, m := chainEvaluator(t)
	res, err := ev.Evaluate(m)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.0
	for _, s := range res.Slots {
		want += s.Metrics.AvgExTMs * s.Metrics.PowerW
	}
	if math.Abs(res.EnergyMJ-want) > 1e-12 {
		t.Errorf("energy = %v, want %v", res.EnergyMJ, want)
	}
}

func TestPeakPowerSerialVsParallel(t *testing.T) {
	ev, m := chainEvaluator(t)
	serial, err := ev.Evaluate(m)
	if err != nil {
		t.Fatal(err)
	}
	// Serial chain on one PE: peak power = single task power.
	if math.Abs(serial.PeakPowerW-serial.Slots[0].Metrics.PowerW) > 1e-9 {
		t.Errorf("serial peak = %v, want %v", serial.PeakPowerW, serial.Slots[0].Metrics.PowerW)
	}
	// Remove dependencies to force parallel execution on two PEs.
	ev.Space.Graph.Edges = nil
	m.Genes[1].PE = 2
	par, err := ev.Evaluate(m)
	if err != nil {
		t.Fatal(err)
	}
	if par.PeakPowerW <= serial.PeakPowerW {
		t.Errorf("parallel peak %v should exceed serial %v", par.PeakPowerW, serial.PeakPowerW)
	}
}

func TestReliabilityIsCriticalityWeighted(t *testing.T) {
	ev, m := chainEvaluator(t)
	res, err := ev.Evaluate(m)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.0
	for i, s := range res.Slots {
		want += ev.Space.Graph.Tasks[i].Criticality * (1 - s.Metrics.ErrProb)
	}
	if math.Abs(res.Reliability-want) > 1e-12 {
		t.Errorf("reliability = %v, want %v", res.Reliability, want)
	}
	if res.ErrorRate() != 1-res.Reliability {
		t.Error("ErrorRate should be 1 - Reliability")
	}
}

func TestCLRProtectionRaisesReliabilityCostsEnergy(t *testing.T) {
	ev, m := chainEvaluator(t)
	plain, err := ev.Evaluate(m)
	if err != nil {
		t.Fatal(err)
	}
	prot := m.Clone()
	for i := range prot.Genes {
		prot.Genes[i].CLR = relmodel.Config{HW: 2, SSW: 2, ASW: 3}
	}
	protRes, err := ev.Evaluate(prot)
	if err != nil {
		t.Fatal(err)
	}
	if protRes.Reliability <= plain.Reliability {
		t.Errorf("full CLR reliability %v <= unprotected %v", protRes.Reliability, plain.Reliability)
	}
	if protRes.EnergyMJ <= plain.EnergyMJ {
		t.Errorf("full CLR energy %v <= unprotected %v", protRes.EnergyMJ, plain.EnergyMJ)
	}
	if protRes.MakespanMs <= plain.MakespanMs {
		t.Errorf("full CLR makespan %v <= unprotected %v", protRes.MakespanMs, plain.MakespanMs)
	}
}

func TestPriorityBreaksTies(t *testing.T) {
	ev, m := chainEvaluator(t)
	// Independent tasks competing for one PE: priority decides order.
	ev.Space.Graph.Edges = nil
	m.Genes[0].Prio, m.Genes[1].Prio, m.Genes[2].Prio = 1, 5, 3
	res, err := ev.Evaluate(m)
	if err != nil {
		t.Fatal(err)
	}
	if !(res.Slots[1].StartMs < res.Slots[2].StartMs && res.Slots[2].StartMs < res.Slots[0].StartMs) {
		t.Errorf("start order should follow priority: %v / %v / %v",
			res.Slots[0].StartMs, res.Slots[1].StartMs, res.Slots[2].StartMs)
	}
}

func TestDependenciesRespected(t *testing.T) {
	ev := testEvaluator(t, 50)
	r := rng.New(2)
	for trial := 0; trial < 20; trial++ {
		m := ev.Space.Random(r)
		res, err := ev.Evaluate(m)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range ev.Space.Graph.Edges {
			src, dst := res.Slots[e.Src], res.Slots[e.Dst]
			min := src.EndMs
			if m.Genes[e.Src].PE != m.Genes[e.Dst].PE {
				min += e.CommTimeMs
			}
			if dst.StartMs+1e-9 < min {
				t.Fatalf("edge %d->%d violated: dst starts %v < %v", e.Src, e.Dst, dst.StartMs, min)
			}
		}
	}
}

func TestNoPEOverlap(t *testing.T) {
	ev := testEvaluator(t, 60)
	r := rng.New(3)
	for trial := 0; trial < 20; trial++ {
		m := ev.Space.Random(r)
		res, err := ev.Evaluate(m)
		if err != nil {
			t.Fatal(err)
		}
		byPE := map[int][]Slot{}
		for _, s := range res.Slots {
			byPE[s.PE] = append(byPE[s.PE], s)
		}
		for pe, slots := range byPE {
			for i := range slots {
				for j := range slots {
					if i == j {
						continue
					}
					a, b := slots[i], slots[j]
					if a.StartMs < b.EndMs-1e-9 && b.StartMs < a.EndMs-1e-9 {
						t.Fatalf("PE %d: tasks %d and %d overlap", pe, a.Task, b.Task)
					}
				}
			}
		}
	}
}

func TestBitstreamSwapDelaysAccelTasks(t *testing.T) {
	plat := platform.Default()
	cat := relmodel.DefaultCatalogue()
	mk := func(bs int) []taskgraph.Impl {
		return []taskgraph.Impl{
			{ID: 0, PEType: 3, BaseExTimeMs: 10, BasePowerW: 1, BitstreamID: bs},
		}
	}
	g := &taskgraph.Graph{
		Name: "accel-swap",
		Tasks: []taskgraph.Task{
			{ID: 0, Name: "a", Criticality: 0.5, Impls: mk(1)},
			{ID: 1, Name: "b", Criticality: 0.5, Impls: mk(2)},
		},
		PeriodMs: 200,
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	ev := &Evaluator{
		Space: &mapping.Space{Graph: g, Platform: plat, Catalogue: cat},
		Env:   relmodel.DefaultEnv(),
	}
	// Same PRR-backed PE: second task pays a bitstream swap.
	same := &mapping.Mapping{Genes: []mapping.Gene{{PE: 5, Impl: 0}, {PE: 5, Impl: 0, Prio: -1}}}
	sameRes, err := ev.Evaluate(same)
	if err != nil {
		t.Fatal(err)
	}
	// Different PRRs: no swap.
	diff := &mapping.Mapping{Genes: []mapping.Gene{{PE: 5, Impl: 0}, {PE: 6, Impl: 0}}}
	diffRes, err := ev.Evaluate(diff)
	if err != nil {
		t.Fatal(err)
	}
	swap := plat.BitstreamLoadMs(plat.PRRs[0].BitstreamKB)
	if got := sameRes.MakespanMs - 2*sameRes.Slots[0].Metrics.AvgExTMs; math.Abs(got-swap) > 1e-9 {
		t.Errorf("same-PRR swap overhead = %v, want %v", got, swap)
	}
	if diffRes.MakespanMs >= sameRes.MakespanMs {
		t.Errorf("separate PRRs (%v) should beat shared PRR (%v)", diffRes.MakespanMs, sameRes.MakespanMs)
	}
}

func TestEvaluateRejectsInvalidMapping(t *testing.T) {
	ev := testEvaluator(t, 10)
	m := ev.Space.Random(rng.New(4))
	m.Genes[0].PE = 99
	if _, err := ev.Evaluate(m); err == nil {
		t.Error("Evaluate accepted invalid mapping")
	}
}

func TestMTTFIsMinimum(t *testing.T) {
	ev, m := chainEvaluator(t)
	res, err := ev.Evaluate(m)
	if err != nil {
		t.Fatal(err)
	}
	min := math.Inf(1)
	for _, s := range res.Slots {
		min = math.Min(min, s.Metrics.MTTFMs)
	}
	if res.MTTFMs != min {
		t.Errorf("MTTF = %v, want min %v", res.MTTFMs, min)
	}
}

// Property: for arbitrary valid mappings the system metrics satisfy
// basic sanity: makespan >= longest task, 0 <= F <= 1, energy > 0,
// peak power at least the largest single task power and no more than
// the sum of all task powers.
func TestQuickSystemMetricInvariants(t *testing.T) {
	ev := testEvaluator(t, 30)
	f := func(seed uint32) bool {
		m := ev.Space.Random(rng.New(int64(seed)))
		res, err := ev.Evaluate(m)
		if err != nil {
			return false
		}
		longest, maxP, sumP := 0.0, 0.0, 0.0
		for _, s := range res.Slots {
			longest = math.Max(longest, s.Metrics.AvgExTMs)
			maxP = math.Max(maxP, s.Metrics.PowerW)
			sumP += s.Metrics.PowerW
		}
		return res.MakespanMs >= longest &&
			res.Reliability >= 0 && res.Reliability <= 1 &&
			res.EnergyMJ > 0 &&
			res.PeakPowerW >= maxP-1e-9 && res.PeakPowerW <= sumP+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: scheduling is deterministic — same mapping, same result.
func TestQuickDeterministicSchedule(t *testing.T) {
	ev := testEvaluator(t, 25)
	f := func(seed uint32) bool {
		m := ev.Space.Random(rng.New(int64(seed)))
		a, err1 := ev.Evaluate(m)
		b, err2 := ev.Evaluate(m)
		if err1 != nil || err2 != nil {
			return false
		}
		return a.MakespanMs == b.MakespanMs && a.EnergyMJ == b.EnergyMJ &&
			a.Reliability == b.Reliability && a.PeakPowerW == b.PeakPowerW
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestContentionSerializesTransfers(t *testing.T) {
	// A fan-out of two transfers from one source to two other PEs:
	// without contention both travel in parallel; with the shared
	// interconnect the second waits for the first.
	plat := platform.Default()
	imp := func() []taskgraph.Impl {
		return []taskgraph.Impl{{ID: 0, PEType: 1, BaseExTimeMs: 10, BasePowerW: 1, BinaryKB: 16, BitstreamID: -1}}
	}
	impSafe := func() []taskgraph.Impl {
		return []taskgraph.Impl{{ID: 0, PEType: 2, BaseExTimeMs: 10, BasePowerW: 1, BinaryKB: 16, BitstreamID: -1}}
	}
	g := &taskgraph.Graph{
		Name: "fanout",
		Tasks: []taskgraph.Task{
			{ID: 0, Name: "src", Criticality: 1.0 / 3, Impls: imp()},
			{ID: 1, Name: "a", Criticality: 1.0 / 3, Impls: imp()},
			{ID: 2, Name: "b", Criticality: 1.0 / 3, Impls: impSafe()},
		},
		Edges: []taskgraph.Edge{
			{ID: 0, Src: 0, Dst: 1, CommTimeMs: 8},
			{ID: 1, Src: 0, Dst: 2, CommTimeMs: 8},
		},
		PeriodMs: 200,
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	m := &mapping.Mapping{Genes: []mapping.Gene{
		{PE: 1, Impl: 0}, {PE: 2, Impl: 0}, {PE: 3, Impl: 0},
	}}
	space := &mapping.Space{Graph: g, Platform: plat, Catalogue: relmodel.DefaultCatalogue()}
	plain := &Evaluator{Space: space, Env: relmodel.DefaultEnv()}
	bus := &Evaluator{Space: space, Env: relmodel.DefaultEnv(), ContentionAware: true}
	rp, err := plain.Evaluate(m)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := bus.Evaluate(m)
	if err != nil {
		t.Fatal(err)
	}
	// Parallel transfers: makespan = exec(src) + comm + exec = 10+8+T.
	// Serialised: the later branch waits 8ms more.
	if rb.MakespanMs <= rp.MakespanMs {
		t.Errorf("contention makespan %v should exceed plain %v", rb.MakespanMs, rp.MakespanMs)
	}
	if got := rb.MakespanMs - rp.MakespanMs; math.Abs(got-8) > 1e-9 {
		t.Errorf("serialisation penalty = %v, want 8", got)
	}
}

func TestContentionNoEffectOnSinglePE(t *testing.T) {
	ev, m := chainEvaluator(t)
	plain, err := ev.Evaluate(m)
	if err != nil {
		t.Fatal(err)
	}
	bus := &Evaluator{Space: ev.Space, Env: ev.Env, ContentionAware: true}
	withBus, err := bus.Evaluate(m)
	if err != nil {
		t.Fatal(err)
	}
	if plain.MakespanMs != withBus.MakespanMs || plain.EnergyMJ != withBus.EnergyMJ {
		t.Error("contention model changed a single-PE schedule")
	}
}

func TestContentionNeverFasterAndStillValid(t *testing.T) {
	ev := testEvaluator(t, 40)
	bus := &Evaluator{Space: ev.Space, Env: ev.Env, ContentionAware: true}
	r := rng.New(9)
	for i := 0; i < 20; i++ {
		m := ev.Space.Random(r)
		a, err := ev.Evaluate(m)
		if err != nil {
			t.Fatal(err)
		}
		b, err := bus.Evaluate(m)
		if err != nil {
			t.Fatal(err)
		}
		if b.MakespanMs < a.MakespanMs-1e-9 {
			t.Fatalf("contention made schedule faster: %v < %v", b.MakespanMs, a.MakespanMs)
		}
		// Dependencies still respected under contention.
		for _, e := range ev.Space.Graph.Edges {
			if b.Slots[e.Dst].StartMs+1e-9 < b.Slots[e.Src].EndMs {
				t.Fatalf("edge %d->%d violated under contention", e.Src, e.Dst)
			}
		}
	}
}

func TestGanttRendering(t *testing.T) {
	ev, m := chainEvaluator(t)
	res, err := ev.Evaluate(m)
	if err != nil {
		t.Fatal(err)
	}
	svg := res.Gantt("chain", func(task int) string { return ev.Space.Graph.Tasks[task].Name })
	for _, want := range []string{"chain", "PE1", "<rect"} {
		if !strings.Contains(svg, want) {
			t.Errorf("gantt missing %q", want)
		}
	}
}
