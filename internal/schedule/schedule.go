// Package schedule implements CLR-integrated task scheduling
// (Section 3.4) and the system-level QoS and performance estimation of
// Table 3. Given a complete mapping — per task: PE binding,
// implementation, CLR configuration and priority — a static
// priority-driven list scheduler produces average start/end times
// (SST_t, SET_t) for every task, from which the application metrics
// are derived:
//
//	S_app — average makespan:            max_t SET_t            (Eq. 1)
//	F_app — functional reliability:      sum_t zeta_t (1-ErrProb_t) (Eq. 2)
//	W_app — peak power:                  max_x sum of active W_t (Eq. 3)
//	J_app — energy:                      sum_t AvgExT_t * W_t    (Eq. 3)
//
// Cross-PE data dependencies pay the edge's communication time;
// same-PE dependencies are free. Consecutive accelerator tasks on a
// PRR-backed PE that require different circuits pay the bitstream
// reconfiguration time between them (time-multiplexed PRR use).
package schedule

import (
	"fmt"
	"math"
	"sort"

	"clrdse/internal/mapping"
	"clrdse/internal/plot"
	"clrdse/internal/relmodel"
)

// Slot is one task's placement in the computed schedule.
type Slot struct {
	// Task is the task ID.
	Task int
	// PE is the processing element the task executes on.
	PE int
	// StartMs and EndMs are the average start and end times (SST_t and
	// SET_t); durations use the implementation's AvgExT under its CLR
	// configuration.
	StartMs, EndMs float64
	// Metrics are the task-level Table 2 metrics for the chosen
	// (implementation, PE, CLR configuration).
	Metrics relmodel.TaskMetrics
}

// Result aggregates the schedule and the Table 3 system metrics.
type Result struct {
	// Slots is indexed by task ID.
	Slots []Slot
	// MakespanMs is S_app.
	MakespanMs float64
	// Reliability is F_app in [0,1].
	Reliability float64
	// PeakPowerW is W_app.
	PeakPowerW float64
	// EnergyMJ is J_app in millijoules (watts x milliseconds).
	EnergyMJ float64
	// MTTFMs is the lifetime estimate of the configuration: the
	// minimum task-level MTTF across the mapping (the first PE wear-out
	// limits the system).
	MTTFMs float64
	// MeetsPeriod reports whether the makespan fits within the
	// application period (one execution cycle).
	MeetsPeriod bool
}

// ErrorRate returns 1 - F_app, the application error rate used as the
// x-axis of the paper's Figure 1.
func (r *Result) ErrorRate() float64 { return 1 - r.Reliability }

// Evaluator computes schedules and system metrics for mappings within
// one problem instance. It is stateless apart from the instance
// definition and safe for concurrent use.
type Evaluator struct {
	// Space is the problem instance (graph, platform, catalogue).
	Space *mapping.Space
	// Env holds the fault-rate and aging environment.
	Env relmodel.Env
	// ContentionAware, when set, models the on-chip interconnect as a
	// shared medium: cross-PE transfers serialise on it instead of
	// only adding latency. The default (off) is the paper's additive
	// communication-delay model of Table 3.
	ContentionAware bool
}

// Evaluate schedules the mapping and returns the system metrics. The
// mapping must be valid for the space. Task durations are the
// analytical average execution times (Table 3's average start/end
// semantics).
func (e *Evaluator) Evaluate(m *mapping.Mapping) (*Result, error) {
	return e.run(m, nil)
}

// Timeline schedules the mapping with caller-supplied per-task
// durations (one entry per task ID, in ms) instead of the analytical
// averages — used by the fault-injection simulator to measure the
// makespan distribution under sampled re-execution times. All other
// metrics still derive from the analytical task models.
func (e *Evaluator) Timeline(m *mapping.Mapping, durationsMs []float64) (*Result, error) {
	if len(durationsMs) != e.Space.Graph.NumTasks() {
		return nil, fmt.Errorf("schedule: %d durations for %d tasks", len(durationsMs), e.Space.Graph.NumTasks())
	}
	for t, d := range durationsMs {
		if d <= 0 {
			return nil, fmt.Errorf("schedule: non-positive duration %v for task %d", d, t)
		}
	}
	return e.run(m, durationsMs)
}

func (e *Evaluator) run(m *mapping.Mapping, durOverride []float64) (*Result, error) {
	if err := e.Space.Validate(m); err != nil {
		return nil, err
	}
	g := e.Space.Graph
	plat := e.Space.Platform
	n := g.NumTasks()

	// Task-level metrics for the chosen implementation and CLR config.
	res := &Result{Slots: make([]Slot, n)}
	for t := 0; t < n; t++ {
		gene := m.Genes[t]
		im := &g.Tasks[t].Impls[gene.Impl]
		pt := plat.TypeOf(gene.PE)
		res.Slots[t] = Slot{
			Task:    t,
			PE:      gene.PE,
			Metrics: relmodel.Evaluate(im, pt, gene.CLR, e.Space.Catalogue, e.Env),
		}
	}

	// Priority-driven list scheduling.
	preds := g.Preds()
	succs := g.Succs()
	remaining := make([]int, n) // unscheduled predecessor count
	dataReady := make([]float64, n)
	for t := 0; t < n; t++ {
		remaining[t] = len(preds[t])
	}
	peAvail := make([]float64, plat.NumPEs())
	peLastBitstream := make([]int, plat.NumPEs())
	for i := range peLastBitstream {
		peLastBitstream[i] = -1
	}
	// Ready list ordered by (priority desc, task ID asc) for
	// determinism.
	var ready []int
	push := func(t int) { ready = append(ready, t) }
	for t := 0; t < n; t++ {
		if remaining[t] == 0 {
			push(t)
		}
	}
	scheduled := 0
	busAvail := 0.0
	for len(ready) > 0 {
		sort.Slice(ready, func(a, b int) bool {
			pa, pb := m.Genes[ready[a]].Prio, m.Genes[ready[b]].Prio
			if pa != pb {
				return pa > pb
			}
			return ready[a] < ready[b]
		})
		t := ready[0]
		ready = ready[1:]

		gene := m.Genes[t]
		slot := &res.Slots[t]
		if e.ContentionAware {
			// Cross-PE transfers serialise on the shared interconnect
			// in scheduling order; every predecessor is already placed
			// when the list scheduler reaches t.
			for _, eid := range preds[t] {
				edge := g.Edges[eid]
				arrive := res.Slots[edge.Src].EndMs
				if m.Genes[edge.Src].PE != gene.PE {
					ts := math.Max(busAvail, arrive)
					arrive = ts + edge.CommTimeMs
					busAvail = arrive
				}
				if arrive > dataReady[t] {
					dataReady[t] = arrive
				}
			}
		}
		start := math.Max(peAvail[gene.PE], dataReady[t])

		// Time-multiplexed PRR use: swapping circuits costs a
		// bitstream load before the task can start.
		im := &g.Tasks[t].Impls[gene.Impl]
		if im.BitstreamID >= 0 {
			prr := plat.PEs[gene.PE].PRR
			if last := peLastBitstream[gene.PE]; last >= 0 && last != im.BitstreamID {
				start += plat.BitstreamLoadMs(plat.PRRs[prr].BitstreamKB)
			}
			peLastBitstream[gene.PE] = im.BitstreamID
		}

		dur := slot.Metrics.AvgExTMs
		if durOverride != nil {
			dur = durOverride[t]
		}
		slot.StartMs = start
		slot.EndMs = start + dur
		peAvail[gene.PE] = slot.EndMs
		scheduled++

		for _, eid := range succs[t] {
			edge := g.Edges[eid]
			if !e.ContentionAware {
				arrive := slot.EndMs
				if m.Genes[edge.Dst].PE != gene.PE {
					arrive += edge.CommTimeMs
				}
				if arrive > dataReady[edge.Dst] {
					dataReady[edge.Dst] = arrive
				}
			}
			remaining[edge.Dst]--
			if remaining[edge.Dst] == 0 {
				push(edge.Dst)
			}
		}
	}
	if scheduled != n {
		return nil, fmt.Errorf("schedule: only %d of %d tasks schedulable (cyclic graph?)", scheduled, n)
	}

	// System-level metrics (Table 3).
	res.MTTFMs = math.Inf(1)
	for t := 0; t < n; t++ {
		s := &res.Slots[t]
		if s.EndMs > res.MakespanMs {
			res.MakespanMs = s.EndMs
		}
		res.Reliability += g.Tasks[t].Criticality * (1 - s.Metrics.ErrProb)
		res.EnergyMJ += s.Metrics.AvgExTMs * s.Metrics.PowerW
		if s.Metrics.MTTFMs < res.MTTFMs {
			res.MTTFMs = s.Metrics.MTTFMs
		}
	}
	res.PeakPowerW = peakPower(res.Slots)
	res.MeetsPeriod = res.MakespanMs <= g.PeriodMs
	return res, nil
}

// peakPower sweeps the schedule's start/end events and returns the
// maximum instantaneous sum of active task powers (Eq. 3's W_app).
func peakPower(slots []Slot) float64 {
	type event struct {
		at    float64
		delta float64
	}
	evs := make([]event, 0, 2*len(slots))
	for i := range slots {
		evs = append(evs,
			event{slots[i].StartMs, slots[i].Metrics.PowerW},
			event{slots[i].EndMs, -slots[i].Metrics.PowerW},
		)
	}
	sort.Slice(evs, func(a, b int) bool {
		if evs[a].at != evs[b].at {
			return evs[a].at < evs[b].at
		}
		// Process departures before arrivals at equal timestamps so
		// back-to-back tasks on one PE do not double-count.
		return evs[a].delta < evs[b].delta
	})
	cur, peak := 0.0, 0.0
	for _, ev := range evs {
		cur += ev.delta
		if cur > peak {
			peak = cur
		}
	}
	return peak
}

// Gantt renders the schedule as an SVG lane chart, one lane per PE,
// with each task bar labelled by its name.
func (r *Result) Gantt(title string, names func(task int) string) string {
	c := &plot.GanttChart{Title: title, LaneNames: map[int]string{}}
	for _, s := range r.Slots {
		label := fmt.Sprintf("t%d", s.Task)
		if names != nil {
			label = names(s.Task)
		}
		c.Bars = append(c.Bars, plot.Bar{
			Lane:    s.PE,
			Label:   label,
			StartMs: s.StartMs,
			EndMs:   s.EndMs,
		})
		c.LaneNames[s.PE] = fmt.Sprintf("PE%d", s.PE)
	}
	return c.SVG()
}
