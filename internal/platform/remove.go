package platform

import "fmt"

// RemovePE returns a copy of the platform with the given PE removed
// and the remaining PE IDs re-densified. It models a permanent fault
// taking a processing element out of service — the paper's example of
// an internal change handled by re-running the methodology as a
// separate instance with reduced resource availability.
//
// Removing a PRR-backed PE leaves its PRR in place but unreferenced;
// removing the last PE of a type leaves the type in the catalogue
// (harmless: no task can be mapped to it).
func RemovePE(p *Platform, peID int) (*Platform, error) {
	if peID < 0 || peID >= len(p.PEs) {
		return nil, fmt.Errorf("platform: RemovePE(%d) out of range [0,%d)", peID, len(p.PEs))
	}
	if len(p.PEs) == 1 {
		return nil, fmt.Errorf("platform: cannot remove the last PE")
	}
	q := &Platform{
		Name:             p.Name + fmt.Sprintf("-minus-pe%d", peID),
		Types:            append([]PEType(nil), p.Types...),
		PRRs:             append([]PRR(nil), p.PRRs...),
		InterconnectKBps: p.InterconnectKBps,
		ICAPKBps:         p.ICAPKBps,
	}
	for _, pe := range p.PEs {
		if pe.ID == peID {
			continue
		}
		pe.ID = len(q.PEs)
		q.PEs = append(q.PEs, pe)
	}
	if err := q.Validate(); err != nil {
		return nil, fmt.Errorf("platform: RemovePE produced invalid platform: %w", err)
	}
	return q, nil
}
