package platform

// Large returns a bigger HMPSoC than the paper's evaluation platform,
// for headroom studies: 10 processor PEs across the same three
// processor classes plus 5 PRR-backed accelerator slots. Type
// characteristics match Default so results isolate the effect of
// platform size from per-PE behaviour.
func Large() *Platform {
	base := Default()
	p := &Platform{
		Name:             "hmpsoc-10pe-5prr",
		Types:            append([]PEType(nil), base.Types...),
		InterconnectKBps: base.InterconnectKBps,
		ICAPKBps:         base.ICAPKBps,
	}
	add := func(typ, mem, prr int) {
		p.PEs = append(p.PEs, PE{ID: len(p.PEs), Type: typ, LocalMemKB: mem, PRR: prr})
	}
	// 2x perf, 4x mid, 4x safe.
	add(0, 512, -1)
	add(0, 512, -1)
	for i := 0; i < 4; i++ {
		add(1, 512, -1)
	}
	for i := 0; i < 4; i++ {
		add(2, 512, -1)
	}
	for i := 0; i < 5; i++ {
		p.PRRs = append(p.PRRs, PRR{ID: i, BitstreamKB: 384})
		add(3, 256, i)
	}
	if err := p.Validate(); err != nil {
		panic("platform: Large() is invalid: " + err.Error())
	}
	return p
}
