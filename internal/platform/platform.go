// Package platform implements the architecture model of the paper's
// Section 3.1: a heterogeneous MPSoC (HMPSoC) with a distributed shared
// memory architecture, P processing elements (PEs) of several types,
// and a reconfigurable-logic region partitioned into partially
// reconfigurable regions (PRRs) that host hardware accelerators loaded
// over an ICAP-style configuration port.
//
// Each PE is characterised by (ID, PEType); the PE type captures the
// heterogeneity factors enumerated in the paper: the kind of processor,
// the aging-related fault profile (Weibull shape beta), and the
// soft-error masking factor (an AVF-style architectural vulnerability
// factor). PEs have fixed local memory for task binaries, so re-ordering
// tasks on a PE or changing a CLR configuration is free, while moving a
// task binary to a different PE or loading a different accelerator
// bitstream into a PRR incurs reconfiguration cost (Section 3.5).
package platform

import (
	"encoding/json"
	"fmt"
	"os"
)

// Kind distinguishes the physical nature of a processing element.
type Kind int

const (
	// KindProcessor is a general-purpose embedded processor.
	KindProcessor Kind = iota
	// KindReconfigurable is a slot of reconfigurable logic: the PE
	// executes accelerator implementations loaded into a PRR.
	KindReconfigurable
)

func (k Kind) String() string {
	switch k {
	case KindProcessor:
		return "processor"
	case KindReconfigurable:
		return "reconfigurable"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// PEType describes one class of processing element. Heterogeneity in
// the platform is expressed entirely through differences between types.
type PEType struct {
	// Name is a human-readable label ("big", "little", "fpga", ...).
	Name string
	// Kind is the physical nature of PEs of this type.
	Kind Kind
	// SpeedFactor scales task execution time: an implementation's base
	// execution time is divided by SpeedFactor when run on this type.
	SpeedFactor float64
	// MaskingFactor is the soft-error masking probability of the PE
	// micro-architecture (1 - AVF): the fraction of raw particle
	// strikes that are architecturally masked before becoming errors.
	// In the paper the three PE types differ in this factor.
	MaskingFactor float64
	// AgingBeta is the Weibull shape parameter of the type's
	// aging-related fault profile (beta_p in the paper).
	AgingBeta float64
	// IdlePowerW is the static power drawn while idle, in watts.
	IdlePowerW float64
	// PowerFactor scales an implementation's dynamic power on this type.
	PowerFactor float64
}

// Validate reports whether the type's parameters are physically
// meaningful.
func (t *PEType) Validate() error {
	switch {
	case t.Name == "":
		return fmt.Errorf("platform: PEType with empty name")
	case t.SpeedFactor <= 0:
		return fmt.Errorf("platform: PEType %q: SpeedFactor must be positive, got %v", t.Name, t.SpeedFactor)
	case t.MaskingFactor < 0 || t.MaskingFactor >= 1:
		return fmt.Errorf("platform: PEType %q: MaskingFactor must be in [0,1), got %v", t.Name, t.MaskingFactor)
	case t.AgingBeta <= 0:
		return fmt.Errorf("platform: PEType %q: AgingBeta must be positive, got %v", t.Name, t.AgingBeta)
	case t.IdlePowerW < 0:
		return fmt.Errorf("platform: PEType %q: IdlePowerW must be non-negative, got %v", t.Name, t.IdlePowerW)
	case t.PowerFactor <= 0:
		return fmt.Errorf("platform: PEType %q: PowerFactor must be positive, got %v", t.Name, t.PowerFactor)
	}
	return nil
}

// PE is one processing element instance: the tuple (ID_p, PEType_p) of
// the paper, plus the fixed local memory that holds task binaries.
type PE struct {
	// ID is the PE's index within the platform, 0-based and dense.
	ID int
	// Type indexes Platform.Types.
	Type int
	// LocalMemKB is the size of the PE's local binary store.
	LocalMemKB int
	// PRR, for reconfigurable PEs, is the index of the partially
	// reconfigurable region backing this PE; -1 for processors.
	PRR int
}

// PRR is a partially reconfigurable region of the FPGA fabric.
// Loading a different accelerator into a PRR means streaming its
// bitstream through the configuration port, which costs time and
// interconnect energy and is the dominant part of dRC for
// accelerator-to-accelerator changes.
type PRR struct {
	// ID is the PRR's index, 0-based and dense.
	ID int
	// BitstreamKB is the size of a full PRR bitstream.
	BitstreamKB int
}

// Platform is the complete HMPSoC model.
type Platform struct {
	// Name labels the platform in reports.
	Name string
	// Types is the catalogue of PE types present.
	Types []PEType
	// PEs are the processing elements, indexed by PE.ID.
	PEs []PE
	// PRRs are the partially reconfigurable regions, indexed by PRR.ID.
	PRRs []PRR
	// InterconnectKBps is the on-chip interconnect bandwidth used when
	// migrating task binaries between local memories (KB per ms).
	InterconnectKBps float64
	// ICAPKBps is the configuration-port bandwidth used when loading
	// PRR bitstreams (KB per ms).
	ICAPKBps float64
}

// Validate checks structural consistency: dense IDs, valid type
// references, reconfigurable PEs pointing at existing PRRs.
func (p *Platform) Validate() error {
	if len(p.Types) == 0 {
		return fmt.Errorf("platform %q: no PE types", p.Name)
	}
	if len(p.PEs) == 0 {
		return fmt.Errorf("platform %q: no PEs", p.Name)
	}
	if p.InterconnectKBps <= 0 {
		return fmt.Errorf("platform %q: InterconnectKBps must be positive, got %v", p.Name, p.InterconnectKBps)
	}
	for i := range p.Types {
		if err := p.Types[i].Validate(); err != nil {
			return err
		}
	}
	for i, pe := range p.PEs {
		if pe.ID != i {
			return fmt.Errorf("platform %q: PE at index %d has ID %d (IDs must be dense)", p.Name, i, pe.ID)
		}
		if pe.Type < 0 || pe.Type >= len(p.Types) {
			return fmt.Errorf("platform %q: PE %d references unknown type %d", p.Name, pe.ID, pe.Type)
		}
		if pe.LocalMemKB <= 0 {
			return fmt.Errorf("platform %q: PE %d has non-positive local memory", p.Name, pe.ID)
		}
		t := &p.Types[pe.Type]
		switch t.Kind {
		case KindReconfigurable:
			if pe.PRR < 0 || pe.PRR >= len(p.PRRs) {
				return fmt.Errorf("platform %q: reconfigurable PE %d references unknown PRR %d", p.Name, pe.ID, pe.PRR)
			}
			if p.ICAPKBps <= 0 {
				return fmt.Errorf("platform %q: reconfigurable PEs present but ICAPKBps is %v", p.Name, p.ICAPKBps)
			}
		case KindProcessor:
			if pe.PRR != -1 {
				return fmt.Errorf("platform %q: processor PE %d must have PRR = -1, got %d", p.Name, pe.ID, pe.PRR)
			}
		}
	}
	for i, r := range p.PRRs {
		if r.ID != i {
			return fmt.Errorf("platform %q: PRR at index %d has ID %d (IDs must be dense)", p.Name, i, r.ID)
		}
		if r.BitstreamKB <= 0 {
			return fmt.Errorf("platform %q: PRR %d has non-positive bitstream size", p.Name, r.ID)
		}
	}
	return nil
}

// TypeOf returns the PEType of the given PE. It panics on an invalid
// index; callers are expected to have validated the platform.
func (p *Platform) TypeOf(peID int) *PEType {
	return &p.Types[p.PEs[peID].Type]
}

// NumPEs returns the number of processing elements.
func (p *Platform) NumPEs() int { return len(p.PEs) }

// PEsOfType returns the IDs of all PEs whose type index is typeIdx.
func (p *Platform) PEsOfType(typeIdx int) []int {
	var ids []int
	for _, pe := range p.PEs {
		if pe.Type == typeIdx {
			ids = append(ids, pe.ID)
		}
	}
	return ids
}

// ProcessorPEs returns the IDs of all general-purpose PEs.
func (p *Platform) ProcessorPEs() []int {
	var ids []int
	for _, pe := range p.PEs {
		if p.Types[pe.Type].Kind == KindProcessor {
			ids = append(ids, pe.ID)
		}
	}
	return ids
}

// ReconfigurablePEs returns the IDs of all PRR-backed PEs.
func (p *Platform) ReconfigurablePEs() []int {
	var ids []int
	for _, pe := range p.PEs {
		if p.Types[pe.Type].Kind == KindReconfigurable {
			ids = append(ids, pe.ID)
		}
	}
	return ids
}

// BinaryMigrationMs returns the time, in milliseconds, to copy a task
// binary of the given size into a PE's local memory over the on-chip
// interconnect. This is the per-task component of dRC for task
// re-binding (Section 3.5, modes 3 and 4).
func (p *Platform) BinaryMigrationMs(binaryKB int) float64 {
	return float64(binaryKB) / p.InterconnectKBps
}

// BitstreamLoadMs returns the time, in milliseconds, to load a PRR
// bitstream of the given size through the configuration port.
func (p *Platform) BitstreamLoadMs(bitstreamKB int) float64 {
	return float64(bitstreamKB) / p.ICAPKBps
}

// MarshalJSON/WriteFile round-trip the platform description so
// experiment configurations can be stored alongside results.

// WriteFile writes the platform as indented JSON.
func (p *Platform) WriteFile(path string) error {
	data, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		return fmt.Errorf("platform: marshal %q: %w", p.Name, err)
	}
	return os.WriteFile(path, data, 0o644)
}

// ReadFile loads a platform from JSON and validates it.
func ReadFile(path string) (*Platform, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var p Platform
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("platform: parse %s: %w", path, err)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &p, nil
}
