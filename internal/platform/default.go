package platform

// Default returns the evaluation platform of the paper's Section 5.1:
// an HMPSoC with 5 PEs of 3 different types that vary in masking
// factor, plus 3 partially reconfigurable regions (PRRs) hosting
// accelerators for the tasks. The three processor types model a
// high-performance core, a mid-range core and a hardened low-power
// core; the PRR-backed PEs are fast but have the lowest architectural
// masking (dense combinational logic exposes more state to upsets).
//
// All absolute numbers are representative embedded-class values; the
// experiments only depend on the relative ordering of speed, power and
// masking between types, which follows the paper's setup.
func Default() *Platform {
	p := &Platform{
		Name: "hmpsoc-5pe-3prr",
		Types: []PEType{
			{
				Name:          "perf", // out-of-order application core
				Kind:          KindProcessor,
				SpeedFactor:   1.6,
				MaskingFactor: 0.30,
				AgingBeta:     2.0,
				IdlePowerW:    0.20,
				PowerFactor:   1.8,
			},
			{
				Name:          "mid", // in-order efficiency core
				Kind:          KindProcessor,
				SpeedFactor:   1.0,
				MaskingFactor: 0.50,
				AgingBeta:     2.4,
				IdlePowerW:    0.08,
				PowerFactor:   1.0,
			},
			{
				Name:          "safe", // hardened low-power core
				Kind:          KindProcessor,
				SpeedFactor:   0.6,
				MaskingFactor: 0.75,
				AgingBeta:     2.8,
				IdlePowerW:    0.04,
				PowerFactor:   0.55,
			},
			{
				Name:          "accel", // PRR-backed accelerator slot
				Kind:          KindReconfigurable,
				SpeedFactor:   2.5,
				MaskingFactor: 0.15,
				AgingBeta:     1.8,
				IdlePowerW:    0.10,
				PowerFactor:   1.3,
			},
		},
		PEs: []PE{
			{ID: 0, Type: 0, LocalMemKB: 512, PRR: -1},
			{ID: 1, Type: 1, LocalMemKB: 512, PRR: -1},
			{ID: 2, Type: 1, LocalMemKB: 512, PRR: -1},
			{ID: 3, Type: 2, LocalMemKB: 512, PRR: -1},
			{ID: 4, Type: 2, LocalMemKB: 512, PRR: -1},
			{ID: 5, Type: 3, LocalMemKB: 256, PRR: 0},
			{ID: 6, Type: 3, LocalMemKB: 256, PRR: 1},
			{ID: 7, Type: 3, LocalMemKB: 256, PRR: 2},
		},
		PRRs: []PRR{
			{ID: 0, BitstreamKB: 384},
			{ID: 1, BitstreamKB: 384},
			{ID: 2, BitstreamKB: 384},
		},
		InterconnectKBps: 800, // KB per ms over the on-chip NoC
		ICAPKBps:         400, // KB per ms through the ICAP
	}
	if err := p.Validate(); err != nil {
		panic("platform: Default() is invalid: " + err.Error())
	}
	return p
}
