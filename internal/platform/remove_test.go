package platform

import "testing"

func TestRemovePE(t *testing.T) {
	p := Default()
	q, err := RemovePE(p, 2)
	if err != nil {
		t.Fatal(err)
	}
	if q.NumPEs() != p.NumPEs()-1 {
		t.Errorf("PEs = %d, want %d", q.NumPEs(), p.NumPEs()-1)
	}
	if err := q.Validate(); err != nil {
		t.Fatalf("reduced platform invalid: %v", err)
	}
	// Original untouched.
	if p.NumPEs() != 8 {
		t.Error("RemovePE mutated the original")
	}
	// IDs re-densified.
	for i, pe := range q.PEs {
		if pe.ID != i {
			t.Errorf("PE at index %d has ID %d", i, pe.ID)
		}
	}
}

func TestRemovePEBounds(t *testing.T) {
	p := Default()
	if _, err := RemovePE(p, -1); err == nil {
		t.Error("accepted negative index")
	}
	if _, err := RemovePE(p, 99); err == nil {
		t.Error("accepted out-of-range index")
	}
}

func TestRemoveLastPE(t *testing.T) {
	p := Default()
	var err error
	for p.NumPEs() > 1 {
		p, err = RemovePE(p, 0)
		if err != nil {
			t.Fatal(err)
		}
	}
	if _, err := RemovePE(p, 0); err == nil {
		t.Error("removed the last PE")
	}
}

func TestRemoveReconfigurablePE(t *testing.T) {
	p := Default()
	q, err := RemovePE(p, 5) // PRR-backed
	if err != nil {
		t.Fatal(err)
	}
	if len(q.PRRs) != 3 {
		t.Errorf("PRR count changed: %d", len(q.PRRs))
	}
	if len(q.ReconfigurablePEs()) != 2 {
		t.Errorf("reconfigurable PEs = %d, want 2", len(q.ReconfigurablePEs()))
	}
}
