package platform

import (
	"path/filepath"
	"strings"
	"testing"
)

func TestDefaultValid(t *testing.T) {
	p := Default()
	if err := p.Validate(); err != nil {
		t.Fatalf("Default() invalid: %v", err)
	}
}

func TestDefaultShape(t *testing.T) {
	p := Default()
	// Paper setup: 5 processor PEs of 3 types, plus 3 PRR slots.
	if got := len(p.ProcessorPEs()); got != 5 {
		t.Errorf("processor PEs = %d, want 5", got)
	}
	if got := len(p.ReconfigurablePEs()); got != 3 {
		t.Errorf("reconfigurable PEs = %d, want 3", got)
	}
	if got := len(p.PRRs); got != 3 {
		t.Errorf("PRRs = %d, want 3", got)
	}
	procTypes := map[int]bool{}
	for _, id := range p.ProcessorPEs() {
		procTypes[p.PEs[id].Type] = true
	}
	if len(procTypes) != 3 {
		t.Errorf("processor PE types = %d, want 3", len(procTypes))
	}
}

func TestDefaultMaskingFactorsVary(t *testing.T) {
	p := Default()
	seen := map[float64]bool{}
	for _, id := range p.ProcessorPEs() {
		seen[p.TypeOf(id).MaskingFactor] = true
	}
	if len(seen) != 3 {
		t.Errorf("distinct masking factors among processor types = %d, want 3", len(seen))
	}
}

func TestTypeOf(t *testing.T) {
	p := Default()
	if p.TypeOf(0).Name != "perf" {
		t.Errorf("TypeOf(0) = %q, want perf", p.TypeOf(0).Name)
	}
	if p.TypeOf(5).Kind != KindReconfigurable {
		t.Errorf("TypeOf(5).Kind = %v, want reconfigurable", p.TypeOf(5).Kind)
	}
}

func TestPEsOfType(t *testing.T) {
	p := Default()
	if got := p.PEsOfType(1); len(got) != 2 {
		t.Errorf("PEsOfType(1) = %v, want 2 PEs", got)
	}
	if got := p.PEsOfType(3); len(got) != 3 {
		t.Errorf("PEsOfType(3) = %v, want 3 PEs", got)
	}
}

func TestMigrationAndBitstreamCosts(t *testing.T) {
	p := Default()
	if got := p.BinaryMigrationMs(800); got != 1.0 {
		t.Errorf("BinaryMigrationMs(800) = %v, want 1.0", got)
	}
	if got := p.BitstreamLoadMs(400); got != 1.0 {
		t.Errorf("BitstreamLoadMs(400) = %v, want 1.0", got)
	}
	// A full PRR bitstream must cost more than a typical binary copy:
	// this ordering drives the accelerator-reconfiguration penalty.
	if p.BitstreamLoadMs(p.PRRs[0].BitstreamKB) <= p.BinaryMigrationMs(64) {
		t.Error("bitstream load should dominate small binary migration")
	}
}

func TestValidateRejectsBadPlatforms(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*Platform)
		wantSub string
	}{
		{"no types", func(p *Platform) { p.Types = nil }, "no PE types"},
		{"no pes", func(p *Platform) { p.PEs = nil }, "no PEs"},
		{"bad interconnect", func(p *Platform) { p.InterconnectKBps = 0 }, "InterconnectKBps"},
		{"sparse pe ids", func(p *Platform) { p.PEs[1].ID = 7 }, "dense"},
		{"unknown type", func(p *Platform) { p.PEs[0].Type = 99 }, "unknown type"},
		{"no local mem", func(p *Platform) { p.PEs[0].LocalMemKB = 0 }, "local memory"},
		{"bad prr ref", func(p *Platform) { p.PEs[5].PRR = 9 }, "unknown PRR"},
		{"processor with prr", func(p *Platform) { p.PEs[0].PRR = 0 }, "PRR = -1"},
		{"sparse prr ids", func(p *Platform) { p.PRRs[1].ID = 5 }, "dense"},
		{"bad bitstream", func(p *Platform) { p.PRRs[0].BitstreamKB = 0 }, "bitstream"},
		{"bad speed", func(p *Platform) { p.Types[0].SpeedFactor = 0 }, "SpeedFactor"},
		{"bad masking", func(p *Platform) { p.Types[0].MaskingFactor = 1 }, "MaskingFactor"},
		{"bad beta", func(p *Platform) { p.Types[0].AgingBeta = -1 }, "AgingBeta"},
		{"bad idle power", func(p *Platform) { p.Types[0].IdlePowerW = -0.1 }, "IdlePowerW"},
		{"bad power factor", func(p *Platform) { p.Types[0].PowerFactor = 0 }, "PowerFactor"},
		{"empty type name", func(p *Platform) { p.Types[0].Name = "" }, "empty name"},
		{"icap missing", func(p *Platform) { p.ICAPKBps = 0 }, "ICAPKBps"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := Default()
			tc.mutate(p)
			err := p.Validate()
			if err == nil {
				t.Fatal("Validate accepted a broken platform")
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Errorf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}

func TestJSONRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "platform.json")
	p := Default()
	if err := p.WriteFile(path); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	q, err := ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if q.Name != p.Name || len(q.PEs) != len(p.PEs) || len(q.Types) != len(p.Types) || len(q.PRRs) != len(p.PRRs) {
		t.Errorf("round-trip mismatch: got %+v", q)
	}
	if q.TypeOf(3).MaskingFactor != p.TypeOf(3).MaskingFactor {
		t.Error("round-trip lost masking factor")
	}
}

func TestReadFileRejectsInvalid(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.json")
	p := Default()
	p.PEs[0].Type = 42
	// Bypass validation by marshalling directly.
	if err := p.WriteFile(path); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	if _, err := ReadFile(path); err == nil {
		t.Error("ReadFile accepted an invalid platform")
	}
}

func TestKindString(t *testing.T) {
	if KindProcessor.String() != "processor" || KindReconfigurable.String() != "reconfigurable" {
		t.Error("Kind.String() mismatch")
	}
	if got := Kind(9).String(); !strings.Contains(got, "9") {
		t.Errorf("unknown kind string = %q", got)
	}
}

func TestLargePlatform(t *testing.T) {
	p := Large()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := len(p.ProcessorPEs()); got != 10 {
		t.Errorf("processor PEs = %d, want 10", got)
	}
	if got := len(p.ReconfigurablePEs()); got != 5 {
		t.Errorf("reconfigurable PEs = %d, want 5", got)
	}
	if len(p.PRRs) != 5 {
		t.Errorf("PRRs = %d, want 5", len(p.PRRs))
	}
	// Same type characteristics as Default, so studies isolate size.
	d := Default()
	for i := range d.Types {
		if p.Types[i] != d.Types[i] {
			t.Errorf("type %d differs from Default", i)
		}
	}
}

func TestLargePlatformRunsApps(t *testing.T) {
	// Large platform must carry the same generated apps.
	p := Large()
	for _, id := range p.ReconfigurablePEs() {
		if p.PEs[id].PRR < 0 {
			t.Errorf("accel PE %d lacks PRR", id)
		}
	}
}
