package lifetime

import (
	"math"
	"testing"

	"clrdse/internal/mapping"
	"clrdse/internal/platform"
	"clrdse/internal/relmodel"
	"clrdse/internal/rng"
	"clrdse/internal/taskgraph"
)

func testSpace(t *testing.T, n int) *mapping.Space {
	t.Helper()
	plat := platform.Default()
	g, err := taskgraph.Generate(taskgraph.GenParams{Seed: 101, NumTasks: n}, plat)
	if err != nil {
		t.Fatal(err)
	}
	return &mapping.Space{Graph: g, Platform: plat, Catalogue: relmodel.DefaultCatalogue()}
}

func TestWearBasics(t *testing.T) {
	s := testSpace(t, 20)
	m := s.Random(rng.New(1))
	etas, err := Wear([]Usage{{M: m, Weight: 1}}, s, relmodel.Env{})
	if err != nil {
		t.Fatal(err)
	}
	if len(etas) != s.Platform.NumPEs() {
		t.Fatalf("etas = %d, want one per PE", len(etas))
	}
	env := relmodel.DefaultEnv()
	for pe, eta := range etas {
		if eta <= 0 || eta > env.Eta0Ms {
			t.Errorf("PE %d eta = %v, want in (0, Eta0]", pe, eta)
		}
	}
}

func TestWearLoadedPEAgesFaster(t *testing.T) {
	s := testSpace(t, 25)
	m := s.Random(rng.New(2))
	etas, err := Wear([]Usage{{M: m, Weight: 1}}, s, relmodel.Env{})
	if err != nil {
		t.Fatal(err)
	}
	// A PE carrying no tasks must have the highest eta among PEs of
	// its own type (only idle stress).
	busy := map[int]bool{}
	for _, g := range m.Genes {
		busy[g.PE] = true
	}
	for pe := range etas {
		if busy[pe] {
			continue
		}
		for other := range etas {
			if other != pe && busy[other] &&
				s.Platform.PEs[other].Type == s.Platform.PEs[pe].Type &&
				etas[other] > etas[pe]+1e-9 {
				t.Errorf("idle PE %d eta %v < busy same-type PE %d eta %v",
					pe, etas[pe], other, etas[other])
			}
		}
	}
}

func TestWearProtectionAcceleratesAging(t *testing.T) {
	s := testSpace(t, 15)
	plain := s.Random(rng.New(3))
	for i := range plain.Genes {
		plain.Genes[i].CLR = relmodel.Config{}
	}
	tmr := plain.Clone()
	for i := range tmr.Genes {
		tmr.Genes[i].CLR = relmodel.Config{HW: 2} // partial TMR everywhere
	}
	a, err := Wear([]Usage{{M: plain, Weight: 1}}, s, relmodel.Env{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Wear([]Usage{{M: tmr, Weight: 1}}, s, relmodel.Env{})
	if err != nil {
		t.Fatal(err)
	}
	worse := 0
	for pe := range a {
		if b[pe] < a[pe]-1e-9 {
			worse++
		}
	}
	if worse == 0 {
		t.Error("TMR everywhere should shorten at least one PE's eta")
	}
}

func TestWearMixesUsageWeights(t *testing.T) {
	s := testSpace(t, 15)
	cheap := s.HeuristicMinEnergy(relmodel.DefaultEnv())
	hot := s.HeuristicMaxRel(relmodel.DefaultEnv())
	allCheap, err := Wear([]Usage{{M: cheap, Weight: 1}}, s, relmodel.Env{})
	if err != nil {
		t.Fatal(err)
	}
	allHot, err := Wear([]Usage{{M: hot, Weight: 1}}, s, relmodel.Env{})
	if err != nil {
		t.Fatal(err)
	}
	mixed, err := Wear([]Usage{{M: cheap, Weight: 1}, {M: hot, Weight: 1}}, s, relmodel.Env{})
	if err != nil {
		t.Fatal(err)
	}
	for pe := range mixed {
		lo := math.Min(allCheap[pe], allHot[pe])
		hi := math.Max(allCheap[pe], allHot[pe])
		if mixed[pe] < lo-1e-9 || mixed[pe] > hi+1e-9 {
			t.Errorf("PE %d mixed eta %v outside [%v,%v]", pe, mixed[pe], lo, hi)
		}
	}
}

func TestWearValidation(t *testing.T) {
	s := testSpace(t, 10)
	if _, err := Wear(nil, s, relmodel.Env{}); err == nil {
		t.Error("accepted empty usage")
	}
	m := s.Random(rng.New(4))
	if _, err := Wear([]Usage{{M: m, Weight: -1}}, s, relmodel.Env{}); err == nil {
		t.Error("accepted negative weight")
	}
	if _, err := Wear([]Usage{{M: m, Weight: 0}}, s, relmodel.Env{}); err == nil {
		t.Error("accepted zero total weight")
	}
	bad := m.Clone()
	bad.Genes[0].PE = 99
	if _, err := Wear([]Usage{{M: bad, Weight: 1}}, s, relmodel.Env{}); err == nil {
		t.Error("accepted invalid mapping")
	}
}

func TestSimulateLifetimeBasics(t *testing.T) {
	s := testSpace(t, 20)
	m := s.Random(rng.New(5))
	res, err := Simulate([]Usage{{M: m, Weight: 1}}, Params{Space: s, Samples: 500, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanFirstFailureMs <= 0 {
		t.Error("no first-failure time")
	}
	if res.MeanMissionLossMs < res.MeanFirstFailureMs {
		t.Errorf("mission loss %v before first failure %v",
			res.MeanMissionLossMs, res.MeanFirstFailureMs)
	}
	if res.FailuresSurvived < 0 || res.FailuresSurvived > float64(s.Platform.NumPEs()) {
		t.Errorf("failures survived = %v out of range", res.FailuresSurvived)
	}
	if res.MedianMissionLossMs <= 0 {
		t.Error("no median mission loss")
	}
}

func TestSimulateDeterministic(t *testing.T) {
	s := testSpace(t, 15)
	m := s.Random(rng.New(7))
	p := Params{Space: s, Samples: 300, Seed: 8}
	a, err := Simulate([]Usage{{M: m, Weight: 1}}, p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate([]Usage{{M: m, Weight: 1}}, p)
	if err != nil {
		t.Fatal(err)
	}
	if a.MeanMissionLossMs != b.MeanMissionLossMs {
		t.Error("same seed produced different lifetimes")
	}
}

func TestFrugalUsageOutlivesHotUsage(t *testing.T) {
	// The motivation for lifetime-aware dynamic CLR: spending mission
	// time in low-power configurations extends system life.
	s := testSpace(t, 25)
	env := relmodel.DefaultEnv()
	cheap := s.HeuristicMinEnergy(env)
	hot := s.HeuristicMaxRel(env)
	a, err := Simulate([]Usage{{M: cheap, Weight: 1}}, Params{Space: s, Samples: 1500, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate([]Usage{{M: hot, Weight: 1}}, Params{Space: s, Samples: 1500, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if a.MeanMissionLossMs <= b.MeanMissionLossMs {
		t.Errorf("frugal usage lifetime %v should exceed hot usage %v",
			a.MeanMissionLossMs, b.MeanMissionLossMs)
	}
}

func TestRunnableUnderMaskMatchesRemovePE(t *testing.T) {
	s := testSpace(t, 30)
	// Removing PE 2 (one of two mid cores): runnableUnder must agree
	// with the platform-level Check on the reduced platform.
	reduced, err := platform.RemovePE(platform.Default(), 2)
	if err != nil {
		t.Fatal(err)
	}
	rs := &mapping.Space{Graph: s.Graph, Platform: reduced, Catalogue: s.Catalogue}
	want := rs.Check() == nil
	if got := runnableUnder(s, 1<<2); got != want {
		t.Errorf("runnableUnder(PE2 failed) = %v, platform check says %v", got, want)
	}
	// All PEs failed: never runnable.
	all := uint64(0)
	for pe := 0; pe < s.Platform.NumPEs(); pe++ {
		all |= 1 << uint(pe)
	}
	if runnableUnder(s, all) {
		t.Error("runnable with every PE failed")
	}
}

func TestUsageFromDatabasePoints(t *testing.T) {
	s := testSpace(t, 10)
	ms := []*mapping.Mapping{s.Random(rng.New(10)), s.Random(rng.New(11))}
	u := UsageFromDatabasePoints(ms)
	if len(u) != 2 || u[0].Weight != 1 || u[1].M != ms[1] {
		t.Errorf("bad usage profile %+v", u)
	}
}

func TestSimulateValidation(t *testing.T) {
	s := testSpace(t, 10)
	m := s.Random(rng.New(12))
	if _, err := Simulate([]Usage{{M: m, Weight: 1}}, Params{}); err == nil {
		t.Error("accepted nil space")
	}
	if _, err := Simulate([]Usage{{M: m, Weight: 1}}, Params{Space: s, Samples: -1}); err == nil {
		t.Error("accepted negative samples")
	}
}
