// Package lifetime turns the CLR model's aging parameters — the
// Weibull scale eta as a thermal-stress indicator and the per-PE-type
// shape beta (Section 3.1/Table 2) — into a mission-lifetime
// Monte-Carlo: sample permanent PE failures from stress-adjusted
// Weibull distributions, replay them against the platform, and measure
// how long the system survives.
//
// Two horizons are reported:
//
//   - first failure — when the first PE wears out (a classic MTTF
//     view), and
//   - mission loss — when so many PEs have failed that the application
//     can no longer be mapped at all (some task loses its last
//     runnable implementation). Until that point, every failure is an
//     internal change the methodology handles by re-running the DSE on
//     the reduced platform (core.RebuildWithoutPE).
//
// Wear depends on how the system is *used*: a usage profile weights
// the stored configurations by their share of mission time (e.g. from
// a run-time simulation), and each PE ages under the power it actually
// dissipates — so a dynamic-CLR system that spends most cycles in
// frugal configurations outlives one pinned to its worst-case point.
// This realises the paper's Section 4.1 remark that MTTF can join the
// optimisation and its future-work theme of lifetime-aware adaptation.
package lifetime

import (
	"fmt"
	"sort"

	"clrdse/internal/mapping"
	"clrdse/internal/relmodel"
	"clrdse/internal/rng"
)

// Usage is one configuration's share of mission time.
type Usage struct {
	// M is the configuration.
	M *mapping.Mapping
	// Weight is the fraction of mission time spent in M; weights are
	// normalised internally.
	Weight float64
}

// Params configures a lifetime campaign.
type Params struct {
	// Space is the problem instance.
	Space *mapping.Space
	// Env supplies Eta0 and the stress coefficient (zero selects
	// relmodel.DefaultEnv).
	Env relmodel.Env
	// Samples is the number of sampled failure sequences (0 selects
	// 2000).
	Samples int
	// Seed drives the sampling.
	Seed int64
}

// Result summarises a campaign.
type Result struct {
	// Samples is the number of sampled mission runs.
	Samples int
	// PEEtaMs is the stress-adjusted Weibull scale per PE under the
	// usage profile.
	PEEtaMs []float64
	// MeanFirstFailureMs and MeanMissionLossMs are the Monte-Carlo
	// means of the two horizons.
	MeanFirstFailureMs float64
	MeanMissionLossMs  float64
	// MedianMissionLossMs is the 50th percentile of mission loss.
	MedianMissionLossMs float64
	// FailuresSurvived is the mean number of PE failures absorbed
	// before mission loss.
	FailuresSurvived float64
}

// Wear computes the per-PE stress-adjusted Weibull scale eta under the
// usage profile: each PE's thermal stress is its time-averaged
// dissipated power (execution-weighted, including the reliability
// methods' replication overheads), scaled by the environment's stress
// coefficient — the PE-level aggregate of the task-level eta model in
// relmodel.
func Wear(usage []Usage, space *mapping.Space, env relmodel.Env) ([]float64, error) {
	if len(usage) == 0 {
		return nil, fmt.Errorf("lifetime: empty usage profile")
	}
	total := 0.0
	for _, u := range usage {
		if u.Weight < 0 {
			return nil, fmt.Errorf("lifetime: negative usage weight")
		}
		total += u.Weight
	}
	if total <= 0 {
		return nil, fmt.Errorf("lifetime: zero total usage weight")
	}
	if (env == relmodel.Env{}) {
		env = relmodel.DefaultEnv()
	}

	g := space.Graph
	avgPower := make([]float64, space.Platform.NumPEs())
	for _, u := range usage {
		if err := space.Validate(u.M); err != nil {
			return nil, err
		}
		w := u.Weight / total
		for t, gene := range u.M.Genes {
			im := &g.Tasks[t].Impls[gene.Impl]
			pt := space.Platform.TypeOf(gene.PE)
			met := relmodel.Evaluate(im, pt, gene.CLR, space.Catalogue, env)
			hw := &space.Catalogue.HW[gene.CLR.HW]
			ssw := &space.Catalogue.SSW[gene.CLR.SSW]
			asw := &space.Catalogue.ASW[gene.CLR.ASW]
			stressMult := 1 + hw.StressFactor + ssw.StressFactor + asw.StressFactor
			// Duty-cycled power: the task dissipates met.PowerW for
			// met.AvgExTMs out of every period.
			avgPower[gene.PE] += w * met.PowerW * stressMult * met.AvgExTMs / g.PeriodMs
		}
	}
	etas := make([]float64, len(avgPower))
	for pe, pw := range avgPower {
		idle := space.Platform.TypeOf(pe).IdlePowerW
		etas[pe] = env.Eta0Ms / (1 + env.StressCoeff*(pw+idle))
	}
	return etas, nil
}

// Simulate runs the mission-lifetime Monte-Carlo under the usage
// profile.
func Simulate(usage []Usage, p Params) (*Result, error) {
	if p.Space == nil {
		return nil, fmt.Errorf("lifetime: nil Space")
	}
	if p.Samples == 0 {
		p.Samples = 2000
	}
	if p.Samples < 0 {
		return nil, fmt.Errorf("lifetime: negative Samples")
	}
	if (p.Env == relmodel.Env{}) {
		p.Env = relmodel.DefaultEnv()
	}
	etas, err := Wear(usage, p.Space, p.Env)
	if err != nil {
		return nil, err
	}
	res := &Result{Samples: p.Samples, PEEtaMs: etas}

	// Pre-compute survivable failure prefixes cheaply: feasibility
	// after a set of failures only depends on which PEs are gone.
	// Sampling order varies, so memoise by failed-set bitmask.
	feasible := map[uint64]bool{}
	canRun := func(mask uint64) bool {
		if ok, hit := feasible[mask]; hit {
			return ok
		}
		ok := runnableUnder(p.Space, mask)
		feasible[mask] = ok
		return ok
	}

	r := rng.New(p.Seed)
	var missLosses []float64
	for s := 0; s < p.Samples; s++ {
		type failure struct {
			at float64
			pe int
		}
		fails := make([]failure, len(etas))
		for pe := range etas {
			beta := p.Space.Platform.TypeOf(pe).AgingBeta
			fails[pe] = failure{at: r.Weibull(etas[pe], beta), pe: pe}
		}
		sort.Slice(fails, func(a, b int) bool { return fails[a].at < fails[b].at })
		res.MeanFirstFailureMs += fails[0].at

		mask := uint64(0)
		loss := fails[len(fails)-1].at
		survived := len(fails) - 1
		for k, f := range fails {
			mask |= 1 << uint(f.pe)
			if !canRun(mask) {
				loss = f.at
				survived = k
				break
			}
		}
		res.MeanMissionLossMs += loss
		res.FailuresSurvived += float64(survived)
		missLosses = append(missLosses, loss)
	}
	res.MeanFirstFailureMs /= float64(p.Samples)
	res.MeanMissionLossMs /= float64(p.Samples)
	res.FailuresSurvived /= float64(p.Samples)
	sort.Float64s(missLosses)
	res.MedianMissionLossMs = missLosses[len(missLosses)/2]
	return res, nil
}

// runnableUnder reports whether every task still has a runnable
// implementation when the masked PEs have failed.
func runnableUnder(s *mapping.Space, failedMask uint64) bool {
	alive := func(peType int) bool {
		for _, pe := range s.Platform.PEs {
			if pe.Type == peType && failedMask&(1<<uint(pe.ID)) == 0 {
				return true
			}
		}
		return false
	}
	for t := range s.Graph.Tasks {
		ok := false
		for _, im := range s.Graph.Tasks[t].Impls {
			if alive(im.PEType) {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// UsageFromDatabasePoints builds a uniform usage profile over stored
// design points (helper for quick comparisons).
func UsageFromDatabasePoints(ms []*mapping.Mapping) []Usage {
	out := make([]Usage, len(ms))
	for i, m := range ms {
		out[i] = Usage{M: m, Weight: 1}
	}
	return out
}
