// Command clrchaos soak-tests the fleet decision service under
// deterministic fault injection. It runs the design-time flow once,
// then drives the same fleet of simulated devices through the same
// QoS event scripts twice: a fault-free reference pass, and a chaos
// pass with the full fault schedule (dropped requests, latency
// spikes, truncated and mangled response bodies, server-side
// rejections, stalled and corrupted decision paths). The resilient
// client masks the faults with retries; the command then asserts the
// service's resilience invariants:
//
//  1. no device state is lost — every device is still registered and
//     has decided exactly its events,
//  2. every QoS event was eventually answered with a real (non-
//     degraded) decision,
//  3. the accepted decision sequence is byte-identical to the
//     fault-free reference pass.
//  4. the decision journal is complete — every (device, seq) has
//     exactly one non-degraded entry carrying a valid trace ID, so
//     every answer the fleet gave can be explained after the fact.
//
// Fault injection is seeded (-chaos-seed); the same seed reproduces
// the identical fault schedule. The command exits non-zero if any
// invariant is violated, which is how CI consumes it.
//
// Usage:
//
//	clrchaos -devices 8 -events 40
//	clrchaos -intensity 2 -chaos-seed 99 -decide-timeout 100ms
//	clrchaos -journal-out /tmp/journal.json   # dump the chaos-pass journal
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"sync"
	"time"

	"clrdse/internal/chaos"
	"clrdse/internal/core"
	"clrdse/internal/dse"
	"clrdse/internal/fleet"
	"clrdse/internal/fleet/client"
	"clrdse/internal/ga"
	"clrdse/internal/obs"
	"clrdse/internal/platform"
	"clrdse/internal/rng"
	"clrdse/internal/runtime"
	"clrdse/internal/taskgraph"
)

func main() {
	var (
		tasks = flag.Int("tasks", 20, "synthetic application size")
		seed  = flag.Int64("seed", 51, "design-time root seed")
		pop   = flag.Int("pop", 28, "stage-1 GA population")
		gens  = flag.Int("gens", 12, "stage-1 GA generations")

		devices   = flag.Int("devices", 8, "simulated device count")
		events    = flag.Int("events", 40, "QoS events per device")
		specSeed  = flag.Int64("spec-seed", 7, "QoS event script seed")
		chaosSeed = flag.Int64("chaos-seed", 99, "fault schedule seed")
		intensity = flag.Float64("intensity", 1, "scales every fault probability")

		attempts = flag.Int("attempts", 6, "client attempts per call")
		attemptT = flag.Duration("attempt-timeout", 2*time.Second, "client per-attempt deadline")
		decideTO = flag.Duration("decide-timeout", 250*time.Millisecond, "server per-decision deadline")
		rounds   = flag.Int("max-rounds", 64, "driver re-submissions per event before giving up")
		jout     = flag.String("journal-out", "", "write the chaos-pass decision journal JSON here (always when set, plus on any violation)")

		clusterN = flag.Int("cluster", 0, "cluster soak mode: run an N-node ring and attack membership (seeded kill/restart) instead of the transport")
	)
	flag.Parse()

	log := obs.NewLogger(os.Stderr)

	plat := platform.Default()
	app, err := taskgraph.Generate(taskgraph.GenParams{Seed: *seed, NumTasks: *tasks}, plat)
	if err != nil {
		fatal(err)
	}
	log.Info("design-time exploration starting", "tasks", len(app.Tasks))
	sys, err := core.Build(app, core.Options{
		Seed:     *seed,
		StageOne: ga.Params{PopSize: *pop, Generations: *gens},
		ReD: dse.ReDParams{
			GA: ga.Params{PopSize: *pop / 2, Generations: *gens / 2},
		},
	})
	if err != nil {
		fatal(err)
	}
	dbs := []fleet.NamedDatabase{{Name: "red", DB: sys.Database(), Space: sys.Problem.Space}}

	if *clusterN > 1 {
		violations := 0
		report := func(format string, args ...any) {
			violations++
			fmt.Printf("INVARIANT VIOLATED: "+format+"\n", args...)
		}
		log.Info("cluster soak starting", "nodes", *clusterN, "devices", *devices, "events", *events, "kill_seed", *chaosSeed)
		err := runClusterSoak(clusterSoakParams{
			dbs:      dbs,
			nodes:    *clusterN,
			devices:  *devices,
			events:   *events,
			specSeed: *specSeed,
			killSeed: *chaosSeed,
			attempts: *attempts,
			attemptT: *attemptT,
		}, report)
		if err != nil {
			fatal(err)
		}
		if violations > 0 {
			fmt.Printf("\nFAIL: %d invariant violations\n", violations)
			os.Exit(1)
		}
		fmt.Printf("\nOK: %d-node cluster survived seeded kill/restart; no device lost, no sequence answered twice, decisions byte-identical to single-node reference\n", *clusterN)
		return
	}

	p := soakParams{
		dbs:      dbs,
		devices:  *devices,
		events:   *events,
		specSeed: *specSeed,
		attempts: *attempts,
		attemptT: *attemptT,
		decideTO: *decideTO,
		rounds:   *rounds,
	}

	log.Info("reference pass starting", "devices", *devices, "events", *events)
	ref, err := runPass(p, nil)
	if err != nil {
		fatal(err)
	}

	inj := chaos.New(chaos.Config{
		Seed:              *chaosSeed,
		PDropRequest:      0.04 * *intensity,
		PLatency:          0.04 * *intensity,
		PDropResponse:     0.04 * *intensity,
		PTruncateResponse: 0.03 * *intensity,
		PMangleResponse:   0.03 * *intensity,
		LatencyMin:        time.Millisecond,
		LatencyMax:        10 * time.Millisecond,
		PReject:           0.05 * *intensity,
		PServerLatency:    0.04 * *intensity,
		PStall:            0.04 * *intensity,
		PCorrupt:          0.04 * *intensity,
		StallMin:          *decideTO * 2,
		StallMax:          *decideTO * 4,
	})
	log.Info("chaos pass starting", "devices", *devices, "events", *events, "chaos_seed", *chaosSeed)
	cha, err := runPass(p, inj)
	if err != nil {
		fatal(err)
	}

	violations := 0
	report := func(format string, args ...any) {
		violations++
		fmt.Printf("INVARIANT VIOLATED: "+format+"\n", args...)
	}
	for d := 0; d < p.devices; d++ {
		if cha.decided[d] != int64(p.events) {
			report("device %d decided %d of %d events", d, cha.decided[d], p.events)
		}
		for i := 0; i < p.events; i++ {
			r, c := ref.decisions[d][i], cha.decisions[d][i]
			if c == "" {
				report("device %d event %d never answered", d, i+1)
				continue
			}
			if r != c {
				report("device %d event %d diverged:\n  ref:   %s\n  chaos: %s", d, i+1, r, c)
			}
		}
	}

	// Invariant 4: the journal explains every decision exactly once.
	// Replays are served from the cache without re-deciding, so even
	// under chaos each (device, seq) gets one non-degraded entry;
	// degraded fallbacks appear as extra flagged entries.
	seen := make(map[string]int)
	for _, e := range cha.journal {
		if _, err := obs.ParseTraceID(string(e.TraceID)); err != nil {
			report("journal entry %s seq %d has invalid trace ID %q", e.Device, e.Seq, e.TraceID)
		}
		if !e.Degraded {
			seen[fmt.Sprintf("%s/%d", e.Device, e.Seq)]++
		}
	}
	for d := 0; d < p.devices; d++ {
		for i := 1; i <= p.events; i++ {
			key := fmt.Sprintf("soak-%d/%d", d, i)
			if n := seen[key]; n != 1 {
				report("journal has %d non-degraded entries for %s, want exactly 1", n, key)
			}
			delete(seen, key)
		}
	}
	for key, n := range seen {
		report("journal has %d entries for unexpected decision %s", n, key)
	}

	fmt.Println()
	fmt.Printf("faults injected:   %d\n", inj.Injected())
	for _, k := range []chaos.Kind{
		chaos.DropRequest, chaos.Latency, chaos.DropResponse,
		chaos.TruncateResponse, chaos.MangleResponse,
		chaos.Reject, chaos.ServerLatency, chaos.Stall, chaos.Corrupt,
	} {
		if n := inj.Count(k); n > 0 {
			fmt.Printf("  %-18s %d\n", k.String()+":", n)
		}
	}
	fmt.Printf("client retries:    %d\n", cha.stats.Retries)
	fmt.Printf("breaker rejects:   %d\n", cha.stats.BreakerRejects)
	fmt.Printf("degraded retried:  %d\n", cha.stats.DegradedRetries)
	fmt.Printf("server replays:    %d\n", cha.replays)
	fmt.Printf("server degraded:   %d\n", cha.degraded)
	fmt.Printf("journal entries:   %d\n", len(cha.journal))

	if *jout != "" || violations > 0 {
		if err := dumpJournal(*jout, cha.journal); err != nil {
			log.Error("journal dump failed", "err", err)
		}
	}
	if violations > 0 {
		fmt.Printf("\nFAIL: %d invariant violations\n", violations)
		os.Exit(1)
	}
	fmt.Printf("\nOK: %d decisions byte-identical to the fault-free reference, all explained in the journal\n",
		p.devices*p.events)
}

// dumpJournal writes the journal as indented JSON for offline triage.
// With no explicit path it falls back to a file in the working
// directory so a failing CI run still leaves an artifact behind.
func dumpJournal(path string, entries []obs.Entry) error {
	if path == "" {
		path = "clrchaos-journal.json"
	}
	b, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, b, 0o644); err != nil {
		return err
	}
	fmt.Printf("decision journal written to %s\n", path)
	return nil
}

type soakParams struct {
	dbs      []fleet.NamedDatabase
	devices  int
	events   int
	specSeed int64
	attempts int
	attemptT time.Duration
	decideTO time.Duration
	rounds   int
}

// passResult is one pass's accepted decisions and server-side stats.
type passResult struct {
	// decisions[d][i] is the canonical JSON of device d's decision for
	// event i+1 ("" when the event was never answered).
	decisions [][]string
	// decided[d] is the server's per-device processed-event count.
	decided []int64

	replays, degraded int64
	stats             client.Stats

	// journal is the fleet-wide decision journal, snapshotted before
	// the pass’s server shuts down.
	journal []obs.Entry
}

// runPass boots a server (chaos-wrapped when inj is non-nil), drives
// every device through its deterministic event script and collects the
// accepted decisions. Each event is re-submitted — with its sequence
// number, so the server decides it at most once — until a real
// decision arrives.
func runPass(p soakParams, inj *chaos.Injector) (*passResult, error) {
	cfg := fleet.ServerConfig{
		Databases:     p.dbs,
		DecideTimeout: p.decideTO,
		Logger:        slog.New(slog.NewTextHandler(io.Discard, nil)),
	}
	if inj != nil {
		cfg.DecideHook = inj.DecideHook()
	}
	srv, err := fleet.NewServer(cfg)
	if err != nil {
		return nil, err
	}
	handler := srv.Handler()
	if inj != nil {
		handler = inj.Middleware(handler)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	hs := &http.Server{Handler: handler}
	done := make(chan error, 1)
	go func() { done <- hs.Serve(l) }()
	defer func() {
		hs.Close()
		<-done
	}()

	tr := http.DefaultTransport.(*http.Transport).Clone()
	tr.MaxIdleConnsPerHost = p.devices
	var rt http.RoundTripper = tr
	if inj != nil {
		rt = &chaos.Transport{Injector: inj, Base: tr}
	}
	c := client.New(client.Config{
		BaseURL:        "http://" + l.Addr().String(),
		Transport:      rt,
		MaxAttempts:    p.attempts,
		AttemptTimeout: p.attemptT,
		JitterSeed:     p.specSeed,
		RetryDegraded:  true,
		// Under deliberately injected 503s a breaker that opens easily
		// only adds rejection noise; the soak wants the retry path hot.
		BreakerThreshold: 1 << 20,
	})
	ctx := context.Background()

	db := p.dbs[0]
	_, maxS, minF, _ := db.Envelope()
	model := runtime.ModelFromDatabase(db.DB)
	root := rng.New(p.specSeed)
	scripts := make([][]runtime.QoSSpec, p.devices)
	for d := range scripts {
		src := root.Split(int64(d))
		stream := model.Stream()
		scripts[d] = make([]runtime.QoSSpec, p.events)
		for i := range scripts[d] {
			scripts[d][i] = stream.Next(src)
		}
	}

	for d := 0; d < p.devices; d++ {
		_, err := c.Register(ctx, fleet.RegisterRequest{
			ID:       fmt.Sprintf("soak-%d", d),
			Database: db.Name,
			PRC:      0.5,
			Trigger:  "on-violation",
			Initial:  fleet.QoSSpecJSON{SMaxMs: maxS, FMin: minF},
		})
		if err != nil {
			return nil, fmt.Errorf("register soak-%d: %w", d, err)
		}
	}

	res := &passResult{
		decisions: make([][]string, p.devices),
		decided:   make([]int64, p.devices),
	}
	var wg sync.WaitGroup
	errs := make([]error, p.devices)
	for d := 0; d < p.devices; d++ {
		res.decisions[d] = make([]string, p.events)
		wg.Add(1)
		go func(d int) {
			defer wg.Done()
			id := fmt.Sprintf("soak-%d", d)
			for i, spec := range scripts[d] {
				wire := fleet.QoSSpecJSON{SMaxMs: spec.SMaxMs, FMin: spec.FMin}
				var dec *fleet.DecisionJSON
				var err error
				for round := 0; round < p.rounds; round++ {
					dec, err = c.QoS(ctx, id, uint64(i+1), wire)
					if err == nil {
						break
					}
				}
				if err != nil {
					errs[d] = fmt.Errorf("%s event %d: %w", id, i+1, err)
					return
				}
				res.decisions[d][i] = canonical(dec)
			}
		}(d)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	for d := 0; d < p.devices; d++ {
		info, err := srv.Registry().Get(fmt.Sprintf("soak-%d", d))
		if err != nil {
			return nil, fmt.Errorf("device soak-%d lost: %w", d, err)
		}
		res.decided[d] = info.Stats.Decisions
		res.replays += info.Stats.Replays
		res.degraded += info.Stats.Degraded
	}
	res.stats = c.Stats()
	// Snapshot before the deferred server teardown: the journal lives
	// in the registry shards, which die with the server.
	res.journal = srv.Registry().Decisions("", 0)
	return res, nil
}

// canonical renders a decision for byte-level comparison across runs.
func canonical(d *fleet.DecisionJSON) string {
	b, err := json.Marshal(d)
	if err != nil {
		return "marshal: " + err.Error()
	}
	return string(b)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "clrchaos:", err)
	if errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintln(os.Stderr, "clrchaos: consider raising -attempt-timeout or -max-rounds")
	}
	os.Exit(1)
}
