package main

// Cluster soak mode (-cluster N): instead of fault-injecting one
// node's transport, this mode runs an N-node in-process cluster and
// attacks membership itself — a seeded schedule of node kills
// (SIGTERM-style drain) and restarts between lockstep event rounds.
// The invariants are the cluster contract:
//
//  1. no device is lost — every device ends registered on exactly one
//     node having decided all its events;
//  2. no sequence is answered twice — the union journal holds, after
//     deduplicating the identical copies migration makes, exactly one
//     decision per (device, seq);
//  3. every decision is byte-identical to a single-node reference run
//     of the same scripts.

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"clrdse/internal/fleet"
	"clrdse/internal/fleet/client"
	"clrdse/internal/fleet/fleettest"
	"clrdse/internal/rng"
	"clrdse/internal/runtime"
)

type clusterSoakParams struct {
	dbs      []fleet.NamedDatabase
	nodes    int
	devices  int
	events   int
	specSeed int64
	killSeed int64
	attempts int
	attemptT time.Duration
}

// clusterEvent is one scheduled membership change.
type clusterEvent struct {
	round   int
	node    int
	restart bool
}

// clusterSchedule derives the kill/restart plan from the seed: two
// kill-then-restart disruptions at seeded rounds against seeded nodes
// (never node 0, so early ring fetches have a stable first target).
func clusterSchedule(seed int64, rounds, nodes int) []clusterEvent {
	src := rng.New(seed)
	quarter := rounds / 4
	if quarter < 1 {
		quarter = 1
	}
	k1 := 1 + src.Intn(nodes-1)
	r1 := 1 + src.Intn(quarter)
	r1back := r1 + 2 + src.Intn(quarter)
	k2 := 1 + src.Intn(nodes-1)
	r2 := r1back + 1 + src.Intn(quarter)
	r2back := r2 + 1 + src.Intn(maxInt(rounds-r2-1, 1))
	evs := []clusterEvent{{round: r1, node: k1}}
	if r1back < rounds {
		evs = append(evs, clusterEvent{round: r1back, node: k1, restart: true})
	}
	if r1back < rounds && r2 < rounds {
		evs = append(evs, clusterEvent{round: r2, node: k2})
		if r2back < rounds {
			evs = append(evs, clusterEvent{round: r2back, node: k2, restart: true})
		}
	}
	return evs
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// runClusterPass drives the fleet through lockstep rounds against the
// cluster, applying membership events at the barriers, and returns
// per-device canonical decision transcripts.
func runClusterPass(clus *fleettest.Cluster, c *client.Client, scripts [][]runtime.QoSSpec, events []clusterEvent) ([][]string, error) {
	ctx := context.Background()
	devices, rounds := len(scripts), len(scripts[0])
	out := make([][]string, devices)
	for d := range out {
		out[d] = make([]string, rounds)
	}
	for r := 0; r < rounds; r++ {
		for _, ev := range events {
			if ev.round != r {
				continue
			}
			var err error
			if ev.restart {
				err = clus.Restart(ctx, ev.node)
			} else {
				err = clus.Kill(ctx, ev.node)
			}
			if err != nil {
				return nil, fmt.Errorf("round %d membership event on node %d: %w", r, ev.node, err)
			}
		}
		var wg sync.WaitGroup
		errs := make([]error, devices)
		for d := 0; d < devices; d++ {
			wg.Add(1)
			go func(d int) {
				defer wg.Done()
				spec := scripts[d][r]
				dec, err := c.QoS(ctx, fmt.Sprintf("soak-%d", d), uint64(r+1),
					fleet.QoSSpecJSON{SMaxMs: spec.SMaxMs, FMin: spec.FMin})
				if err != nil {
					errs[d] = fmt.Errorf("device %d round %d: %w", d, r, err)
					return
				}
				out[d][r] = canonical(dec)
			}(d)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// runClusterSoak executes reference and cluster passes and checks the
// invariants, returning the violation count.
func runClusterSoak(p clusterSoakParams, report func(format string, args ...any)) error {
	scripts := make([][]runtime.QoSSpec, p.devices)
	for d := range scripts {
		scripts[d] = fleettest.Script(p.dbs[0].DB, p.specSeed+int64(d), p.events)
	}
	mkClient := func(urls []string) *client.Client {
		return client.New(client.Config{
			Targets:        urls,
			MaxAttempts:    p.attempts,
			AttemptTimeout: p.attemptT,
			JitterSeed:     p.specSeed,
			// Node kills are the point; eager breakers would only slow
			// the re-resolution under test.
			BreakerThreshold: 1 << 20,
		})
	}
	register := func(c *client.Client) error {
		ctx := context.Background()
		boot := fleettest.LooseSpec(p.dbs[0].DB)
		for d := 0; d < p.devices; d++ {
			_, err := c.Register(ctx, fleet.RegisterRequest{
				ID:       fmt.Sprintf("soak-%d", d),
				Database: p.dbs[0].Name,
				PRC:      0.5,
				Gamma:    0.9,
				Trigger:  "on-violation",
				Initial:  fleet.QoSSpecJSON{SMaxMs: boot.SMaxMs, FMin: boot.FMin},
			})
			if err != nil {
				return fmt.Errorf("register soak-%d: %w", d, err)
			}
		}
		return nil
	}

	ref, err := fleettest.NewCluster(fleettest.ClusterOptions{Nodes: 1, Databases: p.dbs})
	if err != nil {
		return err
	}
	defer ref.Close()
	refClient := mkClient(ref.URLs())
	if err := register(refClient); err != nil {
		return err
	}
	want, err := runClusterPass(ref, refClient, scripts, nil)
	if err != nil {
		return fmt.Errorf("reference pass: %w", err)
	}

	clus, err := fleettest.NewCluster(fleettest.ClusterOptions{Nodes: p.nodes, Databases: p.dbs})
	if err != nil {
		return err
	}
	defer clus.Close()
	c := mkClient(clus.URLs())
	if err := c.RefreshRing(context.Background()); err != nil {
		return err
	}
	if err := register(c); err != nil {
		return err
	}
	schedule := clusterSchedule(p.killSeed, p.events, p.nodes)
	fmt.Printf("membership schedule (seed %d):\n", p.killSeed)
	for _, ev := range schedule {
		verb := "kill"
		if ev.restart {
			verb = "restart"
		}
		fmt.Printf("  round %-3d %s node-%d\n", ev.round, verb, ev.node)
	}
	got, err := runClusterPass(clus, c, scripts, schedule)
	if err != nil {
		return fmt.Errorf("cluster pass: %w", err)
	}

	// Invariant 3: byte-identical to the single-node reference.
	for d := 0; d < p.devices; d++ {
		for r := 0; r < p.events; r++ {
			if got[d][r] != want[d][r] {
				report("device %d round %d diverged:\n  cluster: %s\n  single:  %s", d, r, got[d][r], want[d][r])
			}
		}
	}

	// Invariant 1: no device lost, full history on exactly one node.
	total := 0
	owned := make(map[int]int)
	for i, cn := range clus.Nodes {
		if !clus.Alive(i) {
			continue
		}
		reg := cn.Srv.Registry()
		total += reg.Len()
		for d := 0; d < p.devices; d++ {
			if info, err := reg.Get(fmt.Sprintf("soak-%d", d)); err == nil {
				owned[d]++
				if info.Stats.Decisions != int64(p.events) {
					report("device %d on %s decided %d of %d events", d, cn.ID, info.Stats.Decisions, p.events)
				}
			}
		}
	}
	if total != p.devices {
		report("cluster holds %d devices, want %d", total, p.devices)
	}
	for d := 0; d < p.devices; d++ {
		if owned[d] != 1 {
			report("device %d registered on %d nodes, want exactly 1", d, owned[d])
		}
	}

	// Invariant 2: exactly-once across the union journal (identical
	// migrated copies deduplicate first).
	unique := make(map[string]bool)
	perSeq := make(map[string]int)
	for _, je := range clus.Journal() {
		if je.Entry.Degraded {
			report("degraded journal entry on %s for %s seq %d", je.Node, je.Entry.Device, je.Entry.Seq)
			continue
		}
		b, err := json.Marshal(je.Entry)
		if err != nil {
			return err
		}
		if unique[string(b)] {
			continue
		}
		unique[string(b)] = true
		perSeq[fmt.Sprintf("%s/%d", je.Entry.Device, je.Entry.Seq)]++
	}
	for d := 0; d < p.devices; d++ {
		for i := 1; i <= p.events; i++ {
			key := fmt.Sprintf("soak-%d/%d", d, i)
			if n := perSeq[key]; n != 1 {
				report("union journal has %d distinct decisions for %s, want exactly 1", n, key)
			}
		}
	}
	st := c.Stats()
	fmt.Printf("\ncluster pass: %d decisions, %d retries, %d redirects, %d unique journal entries\n",
		p.devices*p.events, st.Retries, st.Redirects, len(unique))
	return nil
}
