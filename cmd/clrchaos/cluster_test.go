package main

import (
	"fmt"
	"testing"
	"time"

	"clrdse/internal/fleet/fleettest"
)

// TestClusterSchedule pins the schedule's contract: kills precede
// their restarts, node 0 is never attacked, all rounds fit, and equal
// seeds reproduce the plan.
func TestClusterSchedule(t *testing.T) {
	for _, dims := range []struct {
		seed   int64
		rounds int
		nodes  int
	}{{7, 24, 3}, {137, 10, 3}, {1, 3, 2}, {99, 40, 5}} {
		evs := clusterSchedule(dims.seed, dims.rounds, dims.nodes)
		if len(evs) == 0 {
			t.Fatalf("seed %d: empty schedule", dims.seed)
		}
		down := map[int]bool{}
		lastRound := -1
		for _, ev := range evs {
			if ev.node <= 0 || ev.node >= dims.nodes {
				t.Fatalf("seed %d: event on node %d outside (0,%d)", dims.seed, ev.node, dims.nodes)
			}
			if ev.round < 0 || ev.round >= dims.rounds {
				t.Fatalf("seed %d: event at round %d outside [0,%d)", dims.seed, ev.round, dims.rounds)
			}
			if ev.round < lastRound {
				t.Fatalf("seed %d: schedule out of order", dims.seed)
			}
			lastRound = ev.round
			if ev.restart && !down[ev.node] {
				t.Fatalf("seed %d: restart of node %d that was never killed", dims.seed, ev.node)
			}
			down[ev.node] = !ev.restart
		}
		again := clusterSchedule(dims.seed, dims.rounds, dims.nodes)
		if fmt.Sprint(evs) != fmt.Sprint(again) {
			t.Fatalf("seed %d: schedule not reproducible", dims.seed)
		}
	}
	if maxInt(3, 5) != 5 || maxInt(5, 3) != 5 {
		t.Fatal("maxInt broken")
	}
}

// TestRunClusterSoakSmoke drives the binary's cluster mode end to end
// at tiny dimensions: the invariant checks must pass clean.
func TestRunClusterSoakSmoke(t *testing.T) {
	dbs, err := fleettest.DatabasesE()
	if err != nil {
		t.Fatal(err)
	}
	violations := 0
	err = runClusterSoak(clusterSoakParams{
		dbs:      dbs,
		nodes:    2,
		devices:  2,
		events:   8,
		specSeed: 3,
		killSeed: 7,
		attempts: 6,
		attemptT: 5 * time.Second,
	}, func(format string, args ...any) {
		violations++
		t.Errorf(format, args...)
	})
	if err != nil {
		t.Fatalf("runClusterSoak: %v", err)
	}
	if violations != 0 {
		t.Fatalf("%d invariant violations", violations)
	}
}
