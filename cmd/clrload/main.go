// Command clrload drives a running clrserved instance with synthetic
// QoS traffic: K devices registered against one of the server's
// databases, each firing events with exponentially distributed
// inter-arrival times, reporting throughput and latency quantiles.
// Devices ride the resilient fleet client — sequence-numbered events,
// retries with capped exponential backoff and jitter, per-attempt
// deadlines, per-endpoint circuit breakers — so transient server or
// network failures are absorbed rather than reported as errors.
//
// Usage:
//
//	clrload -addr http://127.0.0.1:8080 -devices 64 -events 200
//	clrload -addr http://fleet:8080 -db red -prc 0.8 -mean-ms 5
//	clrload -attempts 6 -attempt-timeout 2s
//	clrload -targets http://n0:8080,http://n1:8080,http://n2:8080
//	clrload -devices 256 -batch 64 -binary
//
// With -targets the client runs ring-aware against a clrserved
// cluster: it mirrors the consistent-hash ring, sends each device's
// events straight to the owning node, and the report breaks
// throughput down per node.
//
// With -batch N the devices' events are coalesced into batch decide
// calls (POST /v1/devices:decide-batch) of up to N events, flushed
// after -batch-age if a batch does not fill; -binary additionally
// puts those batches on the compact binary codec. Per-device ordering
// and exactly-once replay semantics are unchanged — batching only
// amortises the per-request HTTP and codec cost.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"clrdse/internal/fleet/client"
	"clrdse/internal/obs"
)

func main() {
	var (
		addr     = flag.String("addr", "http://127.0.0.1:8080", "server base URL")
		targets  = flag.String("targets", "", "comma-separated cluster node base URLs (enables ring-aware routing and per-node reporting)")
		devices  = flag.Int("devices", 32, "simulated device count")
		events   = flag.Int("events", 100, "QoS events per device")
		db       = flag.String("db", "", "database to register against (default: the server's first)")
		prc      = flag.Float64("prc", 0.5, "per-device pRC")
		trigger  = flag.String("trigger", "on-violation", "adaptation trigger: always | on-violation")
		gamma    = flag.Float64("gamma", 0, "per-device AuRA discount (0 = uRA)")
		meanMs   = flag.Float64("mean-ms", 0, "mean Exp inter-arrival sleep in ms (0 = closed loop)")
		seed     = flag.Int64("seed", 7, "event stream seed")
		prefix   = flag.String("prefix", "clrload", "registered device ID prefix")
		attempts = flag.Int("attempts", 4, "max attempts per call (retries with capped backoff)")
		attemptT = flag.Duration("attempt-timeout", 5*time.Second, "per-attempt deadline")
		batch    = flag.Int("batch", 0, "coalesce events into batch decides of this size (0 = single-event calls)")
		batchAge = flag.Duration("batch-age", 0, "max wait for a batch to fill (0 = client default, 5ms)")
		binary   = flag.Bool("binary", false, "use the compact binary codec for batch calls")
	)
	flag.Parse()

	// Diagnostics go through the shared trace-stamping handler so a
	// clrload line next to a clrserved line reads the same way; the
	// latency report itself stays on stdout for piping.
	var targetList []string
	for _, t := range strings.Split(*targets, ",") {
		if t = strings.TrimSpace(t); t != "" {
			targetList = append(targetList, t)
		}
	}

	if len(targetList) > 0 {
		// The ring decides routing; the first target is the default for
		// non-device calls.
		*addr = ""
	}

	log := obs.NewLogger(os.Stderr)
	log.Info("load run starting", "addr", *addr, "targets", len(targetList), "devices", *devices, "events", *events, "db", *db, "batch", *batch, "binary", *binary)

	report, err := client.RunLoad(client.LoadParams{
		BaseURL:            *addr,
		Targets:            targetList,
		Devices:            *devices,
		EventsPerDevice:    *events,
		Database:           *db,
		PRC:                *prc,
		Trigger:            *trigger,
		Gamma:              *gamma,
		MeanInterArrivalMs: *meanMs,
		Seed:               *seed,
		DevicePrefix:       *prefix,
		MaxAttempts:        *attempts,
		AttemptTimeout:     *attemptT,
		Batch:              *batch,
		BatchAge:           *batchAge,
		Binary:             *binary,
	})
	if err != nil {
		log.Error("load run failed", "err", err)
		os.Exit(1)
	}
	fmt.Println(report)
}
