// Command tgffgen generates TGFF-style synthetic applications for the
// default HMPSoC platform and writes them as JSON and/or Graphviz DOT.
//
// Usage:
//
//	tgffgen -n 40 -seed 7 -json app.json -dot app.dot
//	tgffgen -jpeg -dot jpeg.dot        # the Figure 2b JPEG encoder
package main

import (
	"flag"
	"fmt"
	"os"

	"clrdse/internal/platform"
	"clrdse/internal/taskgraph"
)

func main() {
	var (
		n        = flag.Int("n", 20, "number of tasks")
		seed     = flag.Int64("seed", 1, "generator seed")
		jpeg     = flag.Bool("jpeg", false, "emit the JPEG encoder of Figure 2b instead of a synthetic graph")
		jsonPath = flag.String("json", "", "write the graph as JSON to this path")
		dotPath  = flag.String("dot", "", "write the graph as Graphviz DOT to this path")
		inPath   = flag.String("in", "", "parse a TGFF file instead of generating")
		stats    = flag.Bool("stats", false, "print structural statistics")
	)
	flag.Parse()

	plat := platform.Default()
	var g *taskgraph.Graph
	switch {
	case *inPath != "":
		f, err := os.Open(*inPath)
		if err != nil {
			fatal(err)
		}
		g, err = taskgraph.ParseTGFF(f, plat, taskgraph.TGFFOptions{Seed: *seed})
		//lint:allow errdrop read-only file; a close failure cannot lose parsed data
		f.Close()
		if err != nil {
			fatal(err)
		}
	case *jpeg:
		g = taskgraph.JPEGEncoder(plat)
	default:
		var err error
		g, err = taskgraph.Generate(taskgraph.GenParams{Seed: *seed, NumTasks: *n}, plat)
		if err != nil {
			fatal(err)
		}
	}

	fmt.Printf("%s: %d tasks, %d edges, period %.1f ms\n", g.Name, len(g.Tasks), len(g.Edges), g.PeriodMs)
	if *stats {
		st := g.Stats()
		fmt.Printf("depth %d, width %d, avg in-degree %.2f\n", st.Depth, st.Width, st.AvgDegree)
		fmt.Printf("%d implementations (%d accelerator), serial estimate %.1f ms\n",
			st.Impls, st.AccelImpls, st.SerialMs)
	}
	if *jsonPath != "" {
		if err := g.WriteFile(*jsonPath); err != nil {
			fatal(err)
		}
		fmt.Println("wrote", *jsonPath)
	}
	if *dotPath != "" {
		if err := os.WriteFile(*dotPath, []byte(g.DOT()), 0o644); err != nil {
			fatal(err)
		}
		fmt.Println("wrote", *dotPath)
	}
	if *jsonPath == "" && *dotPath == "" {
		fmt.Print(g.DOT())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tgffgen:", err)
	os.Exit(1)
}
