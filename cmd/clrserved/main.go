// Command clrserved is the fleet decision service: it runs the
// design-time flow once, then serves the resulting (pruned) database
// to many devices over HTTP/JSON. Each registered device gets its own
// runtime manager; QoS events arrive as POST requests and return the
// decision together with the imperative reconfiguration plan. High-
// rate submitters can coalesce events into POST /v1/devices:decide-batch
// (optionally on the compact binary codec, Content-Type
// application/x-clr-bin) — same per-device ordering and exactly-once
// replay semantics, a fraction of the per-event cost.
//
// Usage:
//
//	clrserved -addr :8080 -tasks 30 -max-points 8
//	clrserved -jpeg -addr 127.0.0.1:9000
//	clrserved -loadgen -devices 64 -events 100
//	clrserved -addr :8080 -evolve -evolve-interval 30s
//	clrserved -addr :8080 -cohort -cohort-epoch 256 -cohort-gamma 0.8
//	clrserved -addr :8080 -cluster-node node-0 \
//	    -cluster-peers node-0=http://h0:8080,node-1=http://h1:8080
//
// With -loadgen the command boots the server on a loopback port,
// drives it with the built-in load generator and prints the latency
// report instead of serving forever.
//
// With -cluster-node the process joins a consistent-hash ring over the
// static peer list: any node accepts any device's request and forwards
// (or, with -cluster-redirect, redirects) it to the owner, peer health
// drives suspicion, and SIGTERM drains every owned device to the
// survivors before the listener closes.
//
// With -evolve the process runs Continuous ReD: a background worker
// periodically folds the decision journal's observed QoS-event
// distribution into a re-search of the "red" database, shadow-scores
// every decision against the candidate, and hot-swaps it in once the
// shadow window's agreement clears -evolve-threshold (in cluster mode,
// only once every alive peer is on the same version).
//
// With -cohort the process runs the cohort-AuRA worker: on a
// deterministic epoch schedule it aggregates the decision journal into
// a shared value table, versions it, and publishes it so cold-start
// devices inherit the cohort's learned values (in cluster mode, only
// once every alive peer holds the same table; a lagging node adopts
// the winner's table instead).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	_ "net/http/pprof" // handlers land on DefaultServeMux, served only with -pprof
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"clrdse/internal/cluster"
	"clrdse/internal/cohort"
	"clrdse/internal/core"
	"clrdse/internal/dse"
	"clrdse/internal/evolve"
	"clrdse/internal/fleet"
	"clrdse/internal/fleet/client"
	"clrdse/internal/ga"
	"clrdse/internal/obs"
	"clrdse/internal/platform"
	"clrdse/internal/taskgraph"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		shards   = flag.Int("shards", fleet.DefaultShards, "device registry shard count")
		grace    = flag.Duration("grace", 10*time.Second, "shutdown drain grace period")
		body     = flag.Int64("max-body", 1<<20, "request body cap in bytes")
		decideTO = flag.Duration("decide-timeout", 0, "per-decision deadline before degraded fallback (0 = default)")
		pprofA   = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. 127.0.0.1:6060; empty = off)")
		jcap     = flag.Int("journal-cap", 0, "per-shard decision journal capacity (0 = default 4096)")
		traceSd  = flag.Int64("trace-seed", 0, "trace-ID minter seed for requests without X-Clr-Trace-Id")

		clNode     = flag.String("cluster-node", "", "this node's cluster ID (enables cluster mode; must appear in -cluster-peers)")
		clPeers    = flag.String("cluster-peers", "", "static membership as id=url pairs, comma-separated (e.g. node-0=http://h0:8080,node-1=http://h1:8080)")
		clVNodes   = flag.Int("cluster-vnodes", 0, "virtual nodes per member on the ring (0 = default)")
		clRedirect = flag.Bool("cluster-redirect", false, "answer non-owned device requests with 307 + X-Clr-Redirect instead of proxying")
		clProbe    = flag.Duration("cluster-probe", 2*time.Second, "peer health-probe interval (0 = membership changes only via POST /v1/cluster/membership)")
		clSuspect  = flag.Int("cluster-suspect", 3, "consecutive probe failures before a peer is marked dead")
		clToken    = flag.String("cluster-token", "", "shared secret gating POST /v1/cluster/handoff and /v1/cluster/membership (empty leaves them open; set it whenever the listener is reachable beyond the cluster network)")

		evolveOn  = flag.Bool("evolve", false, "run the Continuous-ReD worker: re-search the \"red\" database against the observed QoS-event distribution, shadow-validate and hot-swap")
		evolveIv  = flag.Duration("evolve-interval", time.Minute, "evolve: tick period of the background worker")
		evolveThr = flag.Float64("evolve-threshold", 0.95, "evolve: shadow-window agreement fraction required before cutover")

		cohortOn    = flag.Bool("cohort", false, "run the cohort-AuRA worker: aggregate the \"red\" journal into a shared value table on the epoch schedule and publish it for cold-start inheritance")
		cohortEpoch = flag.Int("cohort-epoch", 0, "cohort: base eligible-event count per publishing epoch (0 = default 256; jittered deterministically per epoch)")
		cohortGamma = flag.Float64("cohort-gamma", 0.8, "cohort: AuRA discount the shared table is learned under (only devices registered with the same gamma inherit it)")
		cohortIv    = flag.Duration("cohort-interval", time.Minute, "cohort: tick period of the background worker")

		tasks   = flag.Int("tasks", 30, "synthetic application size")
		jpeg    = flag.Bool("jpeg", false, "use the JPEG encoder of Figure 2b")
		seed    = flag.Int64("seed", 1, "root seed for the design-time flow")
		pop     = flag.Int("pop", 60, "stage-1 GA population")
		gens    = flag.Int("gens", 40, "stage-1 GA generations")
		maxPts  = flag.Int("max-points", 0, "prune the served database to this storage budget (0 = keep all)")
		serveBD = flag.Bool("serve-based", true, "additionally serve the stage-1 Pareto database as \"based\"")

		loadgen = flag.Bool("loadgen", false, "boot on loopback, run the load generator, print the report and exit")
		devices = flag.Int("devices", 32, "loadgen: simulated device count")
		events  = flag.Int("events", 50, "loadgen: QoS events per device")
		meanMs  = flag.Float64("mean-ms", 0, "loadgen: mean Exp inter-arrival sleep in ms (0 = closed loop)")
		prc     = flag.Float64("prc", 0.5, "loadgen: per-device pRC")
		gamma   = flag.Float64("gamma", 0, "loadgen: per-device AuRA discount (0 = uRA)")
		lgSeed  = flag.Int64("loadgen-seed", 7, "loadgen: event stream seed")
	)
	flag.Parse()

	// One trace-stamping logger for the whole process: the server
	// shares its handler shape, so request lines, decision journals
	// and command diagnostics correlate on trace_id.
	log := obs.NewLogger(os.Stderr)

	plat := platform.Default()
	var app *taskgraph.Graph
	var err error
	if *jpeg {
		app = taskgraph.JPEGEncoder(plat)
	} else {
		app, err = taskgraph.Generate(taskgraph.GenParams{Seed: *seed, NumTasks: *tasks}, plat)
		if err != nil {
			fatal(err)
		}
	}
	log.Info("application loaded", "name", app.Name, "tasks", len(app.Tasks), "edges", len(app.Edges))

	log.Info("design-time exploration starting")
	sys, err := core.Build(app, core.Options{
		Seed:     *seed,
		StageOne: ga.Params{PopSize: *pop, Generations: *gens},
		ReD: dse.ReDParams{
			GA: ga.Params{PopSize: *pop / 2, Generations: *gens / 2},
		},
	})
	if err != nil {
		fatal(err)
	}
	db := sys.Database()
	if *maxPts > 0 && db.Len() > *maxPts {
		pruned, err := dse.Prune(db, *maxPts, false)
		if err != nil {
			fatal(err)
		}
		log.Info("database pruned to storage budget", "from", db.Len(), "to", pruned.Len())
		db = pruned
	}
	dbs := []fleet.NamedDatabase{{Name: "red", DB: db, Space: sys.Problem.Space}}
	if *serveBD {
		dbs = append(dbs, fleet.NamedDatabase{Name: "based", DB: sys.BaseD, Space: sys.Problem.Space})
	}
	for _, n := range dbs {
		minS, maxS, minF, maxF := n.Envelope()
		log.Info("database ready", "name", n.Name, "points", n.DB.Len(),
			"makespan_min_ms", minS, "makespan_max_ms", maxS,
			"reliability_min", minF, "reliability_max", maxF)
	}

	cfg := fleet.ServerConfig{
		Databases:     dbs,
		Shards:        *shards,
		MaxBodyBytes:  *body,
		ShutdownGrace: *grace,
		DecideTimeout: *decideTO,
		JournalCap:    *jcap,
		TraceSeed:     *traceSd,
		Logger:        log,
	}
	if *loadgen {
		// Per-request log lines would swamp the latency report.
		cfg.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	srv, err := fleet.NewServer(cfg)
	if err != nil {
		fatal(err)
	}

	// Cluster mode: wrap the fleet handler with the ring router so any
	// node accepts any device's request, and start the health prober.
	var node *cluster.Node
	if *clNode != "" {
		peers, err := parsePeers(*clPeers)
		if err != nil {
			fatal(err)
		}
		node, err = cluster.New(cluster.Config{
			Self:          *clNode,
			Peers:         peers,
			VNodes:        *clVNodes,
			Redirect:      *clRedirect,
			TraceSeed:     *traceSd + 1, // distinct stream from the fleet server's minter
			ProbeInterval: *clProbe,
			SuspectAfter:  *clSuspect,
			AuthToken:     *clToken,
			Logger:        cfg.Logger,
		}, srv)
		if err != nil {
			fatal(err)
		}
		srv.Wrap(node.Middleware)
		if *clToken == "" {
			log.Warn("cluster handoff/membership endpoints are unauthenticated; set -cluster-token if the listener is reachable beyond the cluster network")
		}
		log.Info("cluster mode enabled", "self", *clNode, "peers", len(peers),
			"ring_version", node.Ring().Version(), "redirect", *clRedirect)
	}

	if *pprofA != "" {
		// The fleet API runs on its own mux, so the pprof handlers on
		// DefaultServeMux are reachable only through this side listener
		// — keep it on loopback in production.
		go func() {
			log.Info("pprof listening", "url", "http://"+*pprofA+"/debug/pprof/")
			if err := http.ListenAndServe(*pprofA, nil); err != nil {
				log.Error("pprof server failed", "err", err)
			}
		}()
	}

	if *loadgen {
		runLoadgen(srv, client.LoadParams{
			Devices:            *devices,
			EventsPerDevice:    *events,
			PRC:                *prc,
			Gamma:              *gamma,
			MeanInterArrivalMs: *meanMs,
			Seed:               *lgSeed,
		})
		return
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *evolveOn {
		w := &evolve.Worker{
			Registry: srv.Registry(),
			Database: "red",
			Proposer: &evolve.Proposer{
				Problem:  sys.Problem,
				StageOne: ga.Params{PopSize: *pop, Generations: *gens},
				ReD: dse.ReDParams{
					GA: ga.Params{PopSize: *pop / 2, Generations: *gens / 2},
				},
				Seed: *seed,
			},
			Interval:  *evolveIv,
			Threshold: *evolveThr,
			Logger:    log,
		}
		if node != nil {
			// In a cluster a handoff bundle is only importable at the
			// importer's active version, so no node cuts over until every
			// alive peer reports the same version state — and a node that
			// finds a peer already ahead adopts the peer's database
			// (catch-up) instead of deferring forever.
			w.Agreement = node.VersionsAgree
			w.Reconcile = node.CatchUpVersions
		}
		go w.Run(ctx)
		log.Info("continuous ReD enabled", "db", "red",
			"interval", *evolveIv, "threshold", *evolveThr)
	}
	if *cohortOn {
		w := &cohort.Worker{
			Registry: srv.Registry(),
			Database: "red",
			Gamma:    *cohortGamma,
			Schedule: cohort.Schedule{Seed: *seed, BaseEvents: *cohortEpoch},
			Interval: *cohortIv,
			Logger:   log,
		}
		if node != nil {
			// A value table seeds agents fleet-wide, so no node publishes
			// until every alive peer holds the same table — and a node
			// that finds a peer already ahead adopts the peer's table
			// (catch-up) instead of deferring forever.
			w.Agreement = node.VTablesAgree
			w.Reconcile = node.CatchUpVTables
		}
		go w.Run(ctx)
		log.Info("cohort AuRA enabled", "db", "red", "gamma", *cohortGamma,
			"epoch_base", *cohortEpoch, "interval", *cohortIv)
	}
	if node != nil {
		go node.Run(ctx, *clProbe)
		// SIGTERM drains before the listener closes: every owned device
		// is handed to the survivors, so a rolling restart loses no
		// state and no sequence numbers.
		serveCtx, cancel := context.WithCancel(context.Background())
		defer cancel()
		go func() {
			<-ctx.Done()
			dctx, dcancel := context.WithTimeout(context.Background(), *grace)
			if err := node.Leave(dctx); err != nil {
				log.Warn("cluster drain incomplete", "err", err)
			}
			dcancel()
			cancel()
		}()
		if err := srv.Run(serveCtx, *addr); err != nil {
			fatal(err)
		}
		return
	}
	if err := srv.Run(ctx, *addr); err != nil {
		fatal(err)
	}
}

// parsePeers parses the -cluster-peers value: comma-separated id=url
// pairs.
func parsePeers(s string) ([]cluster.Peer, error) {
	if s == "" {
		return nil, fmt.Errorf("cluster mode needs -cluster-peers (id=url, comma-separated)")
	}
	var peers []cluster.Peer
	for _, pair := range strings.Split(s, ",") {
		pair = strings.TrimSpace(pair)
		if pair == "" {
			continue
		}
		id, url, ok := strings.Cut(pair, "=")
		if !ok || id == "" || url == "" {
			return nil, fmt.Errorf("bad -cluster-peers entry %q, want id=url", pair)
		}
		peers = append(peers, cluster.Peer{ID: id, URL: url})
	}
	return peers, nil
}

// runLoadgen boots the server on an ephemeral loopback port, fires
// the load at it and prints the report.
func runLoadgen(srv *fleet.Server, p client.LoadParams) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()
	p.BaseURL = "http://" + l.Addr().String()
	fmt.Printf("loadgen: %d devices x %d events against %s\n", p.Devices, p.EventsPerDevice, p.BaseURL)
	report, err := client.RunLoad(p)
	if err != nil {
		fatal(err)
	}
	fmt.Println(report)
	if err := srv.Shutdown(); err != nil {
		fatal(err)
	}
	<-done
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "clrserved:", err)
	os.Exit(1)
}
