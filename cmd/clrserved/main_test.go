package main

import "testing"

func TestParsePeers(t *testing.T) {
	peers, err := parsePeers("node-0=http://a:8080, node-1=http://b:8080,")
	if err != nil {
		t.Fatal(err)
	}
	if len(peers) != 2 || peers[0].ID != "node-0" || peers[1].URL != "http://b:8080" {
		t.Fatalf("parsePeers = %+v", peers)
	}
	for _, bad := range []string{"", "node-0", "=http://a", "node-0="} {
		if _, err := parsePeers(bad); err == nil {
			t.Fatalf("parsePeers(%q) accepted a malformed list", bad)
		}
	}
}
