package main

import (
	"encoding/json"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"clrdse/internal/analysis"
)

func TestVetDriverProbes(t *testing.T) {
	if got := run([]string{"-V=full"}); got != 0 {
		t.Errorf("-V=full exit = %d, want 0", got)
	}
	if got := run([]string{"-flags"}); got != 0 {
		t.Errorf("-flags exit = %d, want 0", got)
	}
}

func TestList(t *testing.T) {
	if got := run([]string{"-list"}); got != 0 {
		t.Errorf("-list exit = %d, want 0", got)
	}
}

func TestUnknownCheck(t *testing.T) {
	if got := run([]string{"-checks", "nosuchanalyzer", "./..."}); got != 2 {
		t.Errorf("unknown -checks exit = %d, want 2", got)
	}
}

func TestCleanPackageExitsZero(t *testing.T) {
	// rng is in the deterministic core and must stay clean; running the
	// real loader over it exercises the standalone path end to end.
	if got := run([]string{"clrdse/internal/rng"}); got != 0 {
		t.Errorf("clean package exit = %d, want 0", got)
	}
}

func TestSelectedChecksOnCleanPackage(t *testing.T) {
	if got := run([]string{"-checks", "detrand,maporder", "clrdse/internal/pareto"}); got != 0 {
		t.Errorf("exit = %d, want 0", got)
	}
}

func TestViolationExitsOne(t *testing.T) {
	// A scratch module whose package base ("dse") is in the
	// deterministic set, importing math/rand: detrand must fire and the
	// standalone driver must exit 1.
	dir := t.TempDir()
	pkgDir := filepath.Join(dir, "dse")
	if err := os.MkdirAll(pkgDir, 0o755); err != nil {
		t.Fatal(err)
	}
	files := map[string]string{
		filepath.Join(dir, "go.mod"): "module scratch\n\ngo 1.22\n",
		filepath.Join(pkgDir, "dse.go"): `package dse

import "math/rand"

func Pick() int { return rand.Int() }
`,
	}
	for name, src := range files {
		if err := os.WriteFile(name, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	defer os.Chdir(wd)
	if got := run([]string{"./..."}); got != 1 {
		t.Errorf("violating package exit = %d, want 1", got)
	}
}

func TestPrintDiagRelativizesPath(t *testing.T) {
	fset := token.NewFileSet()
	f := fset.AddFile("/repo/pkg/file.go", -1, 100)
	f.SetLines([]int{0, 50})
	var sb strings.Builder
	printDiag(&sb, "/repo", fset, analysis.Diagnostic{
		Pos: f.Pos(55), Analyzer: "detrand", Message: "boom",
	})
	got := sb.String()
	if !strings.HasPrefix(got, "pkg/file.go:2:") || !strings.Contains(got, "boom (detrand)") {
		t.Errorf("printDiag = %q", got)
	}
}

func TestVettoolErrorPaths(t *testing.T) {
	if got := vettool(nil, filepath.Join(t.TempDir(), "missing.cfg")); got != 3 {
		t.Errorf("missing cfg exit = %d, want 3", got)
	}
	bad := filepath.Join(t.TempDir(), "bad.cfg")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if got := vettool(nil, bad); got != 3 {
		t.Errorf("malformed cfg exit = %d, want 3", got)
	}
}

func TestVettoolVetxOnly(t *testing.T) {
	dir := t.TempDir()
	vetx := filepath.Join(dir, "out.vetx")
	cfg := vetConfig{ID: "p", Compiler: "gc", ImportPath: "p", VetxOnly: true, VetxOutput: vetx}
	data, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "p.cfg")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if got := vettool(nil, path); got != 0 {
		t.Errorf("VetxOnly exit = %d, want 0", got)
	}
	if _, err := os.Stat(vetx); err != nil {
		t.Errorf("facts placeholder not written: %v", err)
	}
}
