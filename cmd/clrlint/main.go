// Command clrlint runs the repository's determinism and concurrency
// analyzers (see internal/analysis/...) over Go packages.
//
// Standalone usage (the CI lint step):
//
//	go run ./cmd/clrlint ./...
//	go run ./cmd/clrlint -checks detrand,maporder ./internal/dse
//
// It prints findings as file:line:col: message (analyzer) and exits 1
// when any unsuppressed diagnostic remains, 2 on load/internal
// errors. Suppress a finding with a justified comment on or above the
// offending line:
//
//	//lint:allow maporder keys are sorted two statements below
//
// Packages are analyzed in dependency order inside one session, so
// cross-package facts (lockheld boundary summaries, atomicmix access
// sets) flow from producers to dependents. With -cache (the default)
// each package's diagnostics and exported facts are stored under a
// key derived from the toolchain version, the analyzer list, the
// package's sources and its direct imports' export data hashes; a
// warm run re-prints cached diagnostics and decodes cached facts
// without re-analyzing, and a timing summary (packages analyzed vs
// cached) goes to stderr.
//
// The binary also speaks the `go vet -vettool` config protocol
// (best-effort): when invoked with a single *.cfg argument it
// type-checks from the supplied export data and reports findings the
// way a vet tool does.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"clrdse/internal/analysis"
	"clrdse/internal/analysis/factcache"
	"clrdse/internal/analysis/load"
	"clrdse/internal/analysis/suite"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("clrlint", flag.ExitOnError)
	var (
		list     = fs.Bool("list", false, "list analyzers and exit")
		tests    = fs.Bool("tests", false, "also analyze in-package _test.go files")
		checks   = fs.String("checks", "", "comma-separated analyzer names to run (default: all)")
		useCache = fs.Bool("cache", true, "reuse per-package results keyed by source+export-data hashes")
		cacheDir = fs.String("cache-dir", "", "cache directory (default: user cache dir /clrlint)")
		version  = fs.Bool("V", false, "print version and exit (vettool protocol)")
	)
	// The go vet driver probes tools with -V=full and -flags.
	if len(args) == 1 && (args[0] == "-V=full" || args[0] == "--V=full") {
		fmt.Println("clrlint version devel")
		return 0
	}
	if len(args) == 1 && (args[0] == "-flags" || args[0] == "--flags") {
		fmt.Println("[]")
		return 0
	}
	fs.Parse(args)
	if *version {
		fmt.Println("clrlint version devel")
		return 0
	}

	analyzers := suite.All()
	if *checks != "" {
		names := strings.Split(*checks, ",")
		var ok bool
		analyzers, ok = suite.ByName(names)
		if !ok {
			fmt.Fprintf(os.Stderr, "clrlint: unknown analyzer in -checks=%s (have %s)\n", *checks, strings.Join(analyzerNames(), ", "))
			return 2
		}
	}
	if *list {
		for _, a := range suite.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	patterns := fs.Args()
	if len(patterns) == 1 && strings.HasSuffix(patterns[0], ".cfg") {
		return vettool(analyzers, patterns[0])
	}

	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "clrlint: %v\n", err)
		return 2
	}
	start := time.Now()
	ld, err := load.NewLoader(wd, *tests, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "clrlint: %v\n", err)
		return 2
	}
	var cache *factcache.Cache
	if *useCache {
		cache, err = factcache.Open(*cacheDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "clrlint: %v (continuing without cache)\n", err)
		}
	}

	names := make([]string, 0, len(analyzers))
	for _, a := range analyzers {
		names = append(names, a.Name)
	}
	keyHeader := []string{runtime.Version(), strings.Join(names, ","), fmt.Sprintf("tests=%v", *tests)}

	session := analysis.NewSession()
	exit := 0
	hits, misses := 0, 0
	keyFor := make(map[string]string) // import path → cache key
	for _, pkg := range ld.Targets() {
		key := ""
		if cache != nil {
			key = packageKey(ld, pkg, keyHeader, keyFor)
		}
		if key != "" {
			keyFor[pkg.ImportPath] = key
			if entry, ok := cache.Get(key); ok {
				hits++
				for _, d := range entry.Diags {
					printCachedDiag(os.Stdout, wd, d)
					if exit == 0 {
						exit = 1
					}
				}
				if len(entry.Facts) > 0 {
					tp, err := ld.Import(pkg.ImportPath)
					if err == nil {
						if err := session.DecodeFacts(tp, entry.Facts); err != nil {
							fmt.Fprintf(os.Stderr, "clrlint: %s: %v\n", pkg.ImportPath, err)
							return 2
						}
					}
				}
				continue
			}
		}
		misses++
		if err := ld.Check(pkg); err != nil {
			fmt.Fprintf(os.Stderr, "clrlint: %v\n", err)
			return 2
		}
		for _, terr := range pkg.TypeErrors {
			fmt.Fprintf(os.Stderr, "clrlint: %s: type error: %v\n", pkg.ImportPath, terr)
			exit = 2
		}
		target := analysis.Target{Fset: pkg.Fset, Files: pkg.Files, Pkg: pkg.Types, Info: pkg.Info}
		session.AddTarget(target)
		diags, err := analysis.RunSession(session, analyzers, target)
		if err != nil {
			fmt.Fprintf(os.Stderr, "clrlint: %v\n", err)
			return 2
		}
		for _, d := range diags {
			printDiag(os.Stdout, wd, pkg.Fset, d)
			if exit == 0 {
				exit = 1
			}
		}
		if key != "" && len(pkg.TypeErrors) == 0 {
			entry := factcache.Entry{ImportPath: pkg.ImportPath}
			for _, d := range diags {
				pos := pkg.Fset.Position(d.Pos)
				entry.Diags = append(entry.Diags, factcache.Diag{
					File: pos.Filename, Line: pos.Line, Col: pos.Column,
					Analyzer: d.Analyzer, Message: d.Message,
				})
			}
			facts, err := session.EncodeFacts(pkg.Types)
			if err != nil {
				fmt.Fprintf(os.Stderr, "clrlint: %s: %v\n", pkg.ImportPath, err)
				return 2
			}
			entry.Facts = facts
			if err := cache.Put(key, entry); err != nil {
				fmt.Fprintf(os.Stderr, "clrlint: %v (continuing)\n", err)
			}
		}
	}
	fmt.Fprintf(os.Stderr, "clrlint: %d packages (%d cached, %d analyzed) in %s\n",
		hits+misses, hits, misses, time.Since(start).Round(time.Millisecond))
	return exit
}

// packageKey derives the cache key for one package: the shared header
// (toolchain, analyzer list, tests flag), the package's import path,
// the cache keys of its in-run dependencies (which transitively pin
// their fact output), its own sources, and the export data of every
// direct import. An unkeyable package (unreadable file) returns "",
// disabling the cache for it.
func packageKey(ld *load.Loader, pkg *load.Package, header []string, keyFor map[string]string) string {
	elems := append(append([]string{}, header...), pkg.ImportPath)
	var files []string
	for _, imp := range pkg.Imports {
		if k, ok := keyFor[imp]; ok {
			elems = append(elems, imp+"="+k)
		} else if exp := ld.ExportFor(imp); exp != "" {
			files = append(files, exp)
		}
	}
	for _, name := range pkg.GoFiles {
		files = append(files, filepath.Join(pkg.Dir, name))
	}
	key, err := factcache.Key(elems, files)
	if err != nil {
		return ""
	}
	return key
}

func printCachedDiag(w io.Writer, wd string, d factcache.Diag) {
	name := d.File
	if rel, err := filepath.Rel(wd, name); err == nil && !strings.HasPrefix(rel, "..") {
		name = rel
	}
	fmt.Fprintf(w, "%s:%d:%d: %s (%s)\n", name, d.Line, d.Col, d.Message, d.Analyzer)
}

func printDiag(w io.Writer, wd string, fset *token.FileSet, d analysis.Diagnostic) {
	pos := fset.Position(d.Pos)
	name := pos.Filename
	if rel, err := filepath.Rel(wd, name); err == nil && !strings.HasPrefix(rel, "..") {
		name = rel
	}
	fmt.Fprintf(w, "%s:%d:%d: %s (%s)\n", name, pos.Line, pos.Column, d.Message, d.Analyzer)
}

func analyzerNames() []string {
	var names []string
	for _, a := range suite.All() {
		names = append(names, a.Name)
	}
	return names
}

// --- go vet -vettool protocol (best-effort) ---------------------------

// vetConfig mirrors the JSON configuration the go vet driver hands to
// unitchecker-style tools.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

func vettool(analyzers []*analysis.Analyzer, cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "clrlint: %v\n", err)
		return 3
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "clrlint: parsing %s: %v\n", cfgPath, err)
		return 3
	}
	// The driver expects a facts file even though this suite exports
	// no cross-package facts.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("clrlint-no-facts\n"), 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "clrlint: %v\n", err)
			return 3
		}
	}
	if cfg.VetxOnly {
		return 0
	}
	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			fmt.Fprintf(os.Stderr, "clrlint: %v\n", err)
			return 3
		}
		files = append(files, f)
	}
	info := load.NewInfo()
	var typeErrs []error
	conf := types.Config{
		Importer: importer.ForCompiler(fset, cfg.Compiler, lookup),
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	pkg, _ := conf.Check(cfg.ImportPath, fset, files, info)
	if len(typeErrs) > 0 && !cfg.SucceedOnTypecheckFailure {
		for _, terr := range typeErrs {
			fmt.Fprintf(os.Stderr, "clrlint: %v\n", terr)
		}
		return 3
	}
	diags, err := analysis.Run(analyzers, analysis.Target{Fset: fset, Files: files, Pkg: pkg, Info: info})
	if err != nil {
		fmt.Fprintf(os.Stderr, "clrlint: %v\n", err)
		return 3
	}
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		fmt.Fprintf(os.Stderr, "%s:%d:%d: %s (%s)\n", pos.Filename, pos.Line, pos.Column, d.Message, d.Analyzer)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}
