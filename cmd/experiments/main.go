// Command experiments regenerates the tables and figures of the
// paper's evaluation section.
//
// Usage:
//
//	experiments -run all -scale quick
//	experiments -run table6 -scale full
//	experiments -run fig1,fig6 -out results/
//
// At -scale full the sweep covers applications of 10-100 tasks with
// one-million-cycle Monte-Carlo runs (several minutes); -scale quick
// is a fast smoke run.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"clrdse/internal/experiments"
	"clrdse/internal/fleet/fleettest"
	"clrdse/internal/report"
)

type renderer interface{ Render() string }

func main() {
	var (
		run   = flag.String("run", "all", "comma-separated list: fig1,table4,fig5,fig6,table5,fig7,table6,table7,validate,scalability,sensitivity,storage,convergence,cohortab or 'all'")
		scale = flag.String("scale", "quick", "experiment scale: quick | full")
		out   = flag.String("out", "", "directory to write one .txt per experiment (default: stdout)")
		svg   = flag.Bool("svg", false, "additionally write .svg charts for the figures (requires -out)")
		doRep = flag.Bool("report", false, "additionally write a consolidated REPORT.md (requires -out)")
		seed  = flag.Int64("seed", 0, "override the scale's root seed (0 = keep default) for replication studies")
	)
	flag.Parse()
	if *svg && *out == "" {
		fatal(fmt.Errorf("-svg requires -out"))
	}
	if *doRep && *out == "" {
		fatal(fmt.Errorf("-report requires -out"))
	}

	var s experiments.Scale
	switch *scale {
	case "quick":
		s = experiments.QuickScale()
	case "full":
		s = experiments.FullScale()
	default:
		fatal(fmt.Errorf("unknown scale %q", *scale))
	}
	if *seed != 0 {
		s.Seed = *seed
	}
	lab := experiments.NewLab(s)

	all := []string{"fig1", "table4", "fig5", "fig6", "table5", "fig7", "table6", "table7", "validate", "scalability", "sensitivity", "storage", "convergence", "cohortab"}
	want := map[string]bool{}
	if *run == "all" {
		for _, id := range all {
			want[id] = true
		}
	} else {
		for _, id := range strings.Split(*run, ",") {
			want[strings.TrimSpace(id)] = true
		}
	}

	runners := map[string]func() (renderer, error){
		"fig1":        func() (renderer, error) { return lab.Fig1() },
		"table4":      func() (renderer, error) { return lab.Table4() },
		"fig5":        func() (renderer, error) { return lab.Fig5() },
		"fig6":        func() (renderer, error) { return lab.Fig6() },
		"table5":      func() (renderer, error) { return lab.Table5() },
		"fig7":        func() (renderer, error) { return lab.Fig7() },
		"table6":      func() (renderer, error) { return lab.Table6() },
		"table7":      func() (renderer, error) { return lab.Table7() },
		"validate":    func() (renderer, error) { return lab.Validate() },
		"scalability": func() (renderer, error) { return lab.Scalability() },
		"sensitivity": func() (renderer, error) { return lab.Sensitivity() },
		"storage":     func() (renderer, error) { return lab.Storage() },
		"convergence": func() (renderer, error) { return lab.Convergence() },
		"cohortab":    func() (renderer, error) { return runCohortAB(s) },
	}
	for id := range want {
		if _, ok := runners[id]; !ok {
			fatal(fmt.Errorf("unknown experiment %q (have %s)", id, strings.Join(all, ", ")))
		}
	}
	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fatal(err)
		}
	}

	var sections []report.Section
	for _, id := range all {
		if !want[id] {
			continue
		}
		fmt.Fprintf(os.Stderr, "running %s (%s scale) ...\n", id, s.Name)
		r, err := runners[id]()
		if err != nil {
			fatal(fmt.Errorf("%s: %w", id, err))
		}
		text := r.Render()
		if *out == "" {
			fmt.Println(text)
			continue
		}
		path := filepath.Join(*out, id+".txt")
		if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", path)
		sec := report.Section{ID: id, Title: report.Titles[id], Body: text}
		if *svg {
			for _, c := range charts(id, r) {
				p := filepath.Join(*out, c.Name+".svg")
				if err := os.WriteFile(p, []byte(c.SVG), 0o644); err != nil {
					fatal(err)
				}
				fmt.Fprintf(os.Stderr, "wrote %s\n", p)
				sec.SVGs = append(sec.SVGs, c.Name+".svg")
			}
		}
		sections = append(sections, sec)
	}
	if *doRep && len(sections) > 0 {
		md := report.Markdown("Dynamic Cross-Layer Reliability — Reproduction Report", s.Name, sections)
		path := filepath.Join(*out, "REPORT.md")
		if err := os.WriteFile(path, []byte(md), 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	}
}

// runCohortAB replays the cohort A/B harness (uRA vs per-device AuRA
// vs cohort AuRA on one seeded oscillating schedule, see
// fleettest.RunAB) at the requested scale. Equal scales and seeds
// reproduce the table byte for byte.
func runCohortAB(s experiments.Scale) (renderer, error) {
	p := fleettest.ABParams{Seed: s.Seed}
	if s.Name == "full" {
		p = fleettest.ABParams{
			Devices: 8, Events: 120,
			WarmDevices: 12, WarmEvents: 240,
			Seed: s.Seed,
		}
	}
	return fleettest.RunAB(p)
}

// namedChart pairs a chart's file stem with its rendered SVG markup.
type namedChart struct {
	Name string
	SVG  string
}

// charts returns the SVG renderings a result offers, in the fixed
// order they are written and listed in the report. Tables have none.
func charts(id string, r renderer) []namedChart {
	var out []namedChart
	switch v := r.(type) {
	case *experiments.Fig1Result:
		fronts, bars := v.Charts()
		out = append(out,
			namedChart{id, fronts.SVG()},
			namedChart{id + "-javg", bars.SVG()})
	case *experiments.Fig5Result:
		out = append(out, namedChart{id, v.Chart().SVG()})
	case *experiments.Fig6Result:
		out = append(out, namedChart{id, v.Chart().SVG()})
	case *experiments.Fig7Result:
		energy, drc := v.Charts()
		out = append(out,
			namedChart{id + "-energy", energy.SVG()},
			namedChart{id + "-drc", drc.SVG()})
	case *experiments.ConvergenceResult:
		out = append(out, namedChart{id, v.Chart().SVG()})
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
