// Command clrdse runs the full hybrid methodology on one application:
// design-time exploration (system-level MOEA + reconfiguration-cost-
// aware ReD stage), followed by a run-time Monte-Carlo simulation of
// QoS-driven adaptation with uRA or AuRA.
//
// Usage:
//
//	clrdse -tasks 40 -prc 0.5 -cycles 1000000
//	clrdse -jpeg -prc 0 -agent -gamma 0.9
package main

import (
	"flag"
	"fmt"
	"os"

	"clrdse/internal/core"
	"clrdse/internal/dse"
	"clrdse/internal/ga"
	"clrdse/internal/platform"
	"clrdse/internal/runtime"
	"clrdse/internal/schedule"
	"clrdse/internal/taskgraph"
)

func main() {
	var (
		tasks    = flag.Int("tasks", 40, "synthetic application size")
		jpeg     = flag.Bool("jpeg", false, "use the JPEG encoder of Figure 2b")
		tgffPath = flag.String("tgff", "", "load the application from a TGFF file instead of generating one")
		seed     = flag.Int64("seed", 1, "root seed")
		pop      = flag.Int("pop", 80, "stage-1 GA population")
		gens     = flag.Int("gens", 60, "stage-1 GA generations")
		skipReD  = flag.Bool("no-red", false, "skip the reconfiguration-cost-aware stage")
		prc      = flag.Float64("prc", 0.5, "user modulation parameter pRC in [0,1]")
		cycles   = flag.Float64("cycles", 1_000_000, "simulated application execution cycles")
		trigger  = flag.String("trigger", "always", "adaptation trigger: always | on-violation")
		agent    = flag.Bool("agent", false, "use the AuRA reinforcement-learning agent")
		gamma    = flag.Float64("gamma", 0.9, "AuRA discount factor")
		pretrain = flag.Float64("pretrain", 200_000, "AuRA offline Monte-Carlo cycles (prior knowledge)")
		saveAg   = flag.String("save-agent", "", "persist the (pre)trained agent's value functions to this JSON path")
		loadAg   = flag.String("load-agent", "", "load a previously persisted agent instead of pretraining")
		saveDB   = flag.String("save-db", "", "write the design-point database as JSON to this path")
		dbCSV    = flag.String("db-csv", "", "write the design-point database as CSV to this path")
		traceCSV = flag.String("trace-csv", "", "write the run-time event trace as CSV to this path")
		maxPts   = flag.Int("max-points", 0, "prune the database to this storage budget before deployment (0 = keep all)")
		gantt    = flag.String("gantt", "", "write the first stored point's schedule as an SVG Gantt chart to this path")
	)
	flag.Parse()

	plat := platform.Default()
	var app *taskgraph.Graph
	switch {
	case *tgffPath != "":
		f, err := os.Open(*tgffPath)
		if err != nil {
			fatal(err)
		}
		app, err = taskgraph.ParseTGFF(f, plat, taskgraph.TGFFOptions{Seed: *seed})
		//lint:allow errdrop read-only file; a close failure cannot lose parsed data
		f.Close()
		if err != nil {
			fatal(err)
		}
	case *jpeg:
		app = taskgraph.JPEGEncoder(plat)
	default:
		var err error
		app, err = taskgraph.Generate(taskgraph.GenParams{Seed: *seed, NumTasks: *tasks}, plat)
		if err != nil {
			fatal(err)
		}
	}
	fmt.Printf("application %s: %d tasks, %d edges, period %.1f ms\n",
		app.Name, len(app.Tasks), len(app.Edges), app.PeriodMs)

	fmt.Println("design-time exploration ...")
	sys, err := core.Build(app, core.Options{
		Seed:     *seed,
		StageOne: ga.Params{PopSize: *pop, Generations: *gens},
		ReD: dse.ReDParams{
			GA: ga.Params{PopSize: *pop / 2, Generations: *gens / 2},
		},
		SkipReD: *skipReD,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("BaseD: %d Pareto design points\n", sys.BaseD.Len())
	if sys.ReD != nil {
		fmt.Printf("ReD:   %d points (%d additional non-dominant)\n",
			sys.ReD.Len(), len(sys.ReD.ReDPoints()))
	}
	db := sys.Database()
	if *maxPts > 0 && db.Len() > *maxPts {
		pruned, err := dse.Prune(db, *maxPts, false)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("pruned database %d -> %d points (storage budget)\n", db.Len(), pruned.Len())
		db = pruned
	}
	if *saveDB != "" {
		if err := db.WriteFile(*saveDB); err != nil {
			fatal(err)
		}
		fmt.Println("wrote", *saveDB)
	}
	if *dbCSV != "" {
		f, err := os.Create(*dbCSV)
		if err != nil {
			fatal(err)
		}
		if err := db.WriteCSV(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Println("wrote", *dbCSV)
	}
	fmt.Printf("%-4s %12s %12s %12s %s\n", "id", "makespan/ms", "energy/mJ", "reliability", "origin")
	for _, p := range db.Points {
		origin := "pareto"
		if p.FromReD {
			origin = "red"
		}
		fmt.Printf("%-4d %12.2f %12.2f %12.4f %s\n", p.ID, p.MakespanMs, p.EnergyMJ, p.Reliability, origin)
	}

	if *gantt != "" {
		ev := &schedule.Evaluator{Space: sys.Problem.Space, Env: sys.Problem.Env}
		res, err := ev.Evaluate(db.Points[0].M)
		if err != nil {
			fatal(err)
		}
		svg := res.Gantt(fmt.Sprintf("%s — design point 0", app.Name), func(task int) string {
			return app.Tasks[task].Name
		})
		if err := os.WriteFile(*gantt, []byte(svg), 0o644); err != nil {
			fatal(err)
		}
		fmt.Println("wrote", *gantt)
	}

	params := sys.RuntimeParams(db, *prc, *seed+1)
	params.Cycles = *cycles
	if *traceCSV != "" {
		params.TraceLen = 1 << 20
	}
	switch *trigger {
	case "always":
		params.Trigger = runtime.TriggerAlways
	case "on-violation":
		params.Trigger = runtime.TriggerOnViolation
	default:
		fatal(fmt.Errorf("unknown trigger %q", *trigger))
	}
	if *agent || *loadAg != "" {
		var ag *runtime.Agent
		if *loadAg != "" {
			var err error
			if ag, err = runtime.ReadAgent(*loadAg, db.Len()); err != nil {
				fatal(err)
			}
			fmt.Printf("loaded agent from %s (%d episodes of prior knowledge)\n", *loadAg, ag.Episodes)
		} else {
			fmt.Printf("pretraining AuRA agent (gamma=%.2f, %.0f cycles) ...\n", *gamma, *pretrain)
			var err error
			if ag, err = sys.PretrainedAgent(db, *gamma, *prc, *pretrain, *seed+2); err != nil {
				fatal(err)
			}
		}
		if *saveAg != "" {
			if err := ag.WriteFile(*saveAg); err != nil {
				fatal(err)
			}
			fmt.Println("wrote", *saveAg)
		}
		params.Agent = ag
	}

	fmt.Printf("run-time simulation: %.0f cycles, pRC=%.2f, trigger=%s, agent=%v ...\n",
		*cycles, *prc, *trigger, *agent)
	m, err := runtime.Simulate(params)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("events:            %d\n", m.Events)
	fmt.Printf("reconfigurations:  %d\n", m.Reconfigs)
	fmt.Printf("avg reconfig cost: %.4f ms/event (max %.3f ms)\n", m.AvgDRC, m.MaxDRC)
	fmt.Printf("task migrations:   %d\n", m.TotalMigrations)
	fmt.Printf("avg energy:        %.2f mJ/cycle\n", m.AvgEnergyMJ)
	fmt.Printf("unsatisfiable QoS: %d events\n", m.ViolationEvents)
	if *traceCSV != "" {
		f, err := os.Create(*traceCSV)
		if err != nil {
			fatal(err)
		}
		if err := m.WriteTraceCSV(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Println("wrote", *traceCSV)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "clrdse:", err)
	os.Exit(1)
}
